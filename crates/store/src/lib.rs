//! # fireledger-store — the durable ledger of a FireLedger node
//!
//! Everything a node must not lose across a `kill -9` lives here, in one
//! directory per node:
//!
//! ```text
//! <dir>/
//!   blocks-000000.seg   sealed block-log segments (records + index footer)
//!   blocks-000001.log   active block-log segment (append-only)
//!   wal-000000.log      consensus write-ahead log (single active file)
//!   disk.full           (only under fault injection: byte budget)
//! ```
//!
//! The **block log** persists the node's committed ledger — FireLedger's
//! definite, BBFC(f+1)-final delivery stream, which is immutable by
//! protocol guarantee and therefore safe to append forever. The **WAL**
//! persists the small not-yet-committed protocol state (current round,
//! votes cast, locked headers) that a restarted node needs so it cannot
//! contradict its pre-crash self. Both are sequences of CRC-checksummed,
//! length-prefixed records (layout pinned in docs/WIRE_FORMAT.md §9);
//! replay truncates a torn or corrupt tail back to the last valid record
//! instead of failing, so a crash mid-write costs at most the torn record.
//!
//! Durability is a policy knob, [`FsyncPolicy`]:
//!
//! * [`FsyncPolicy::Always`] — synchronous append + `fdatasync` per record
//!   on the caller's thread: every acknowledged record survives power loss;
//! * [`FsyncPolicy::EveryN`] — appends are handed to a background writer
//!   thread which syncs every N records: a crash window of < N records;
//! * [`FsyncPolicy::OsDefault`] — background writer, no explicit sync: the
//!   OS page cache decides (survives process death, not power loss).
//!
//! The crate is deliberately payload-agnostic — records are `(kind, bytes)`
//! pairs — and depends on nothing but the standard library; the encodings
//! of block and WAL payloads live in `fireledger-types`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crc32;
pub mod inject;
pub mod log;
pub mod record;

pub use crc32::{crc32, Crc32};
pub use log::{SegmentedLog, DEFAULT_RECORDS_PER_SEGMENT};
pub use record::{
    decode_footer, encode_footer, encode_record, scan_records, Record, FOOTER_MAGIC, RECORD_MAGIC,
};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// When appended records are forced to the platter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record, on the appending thread. Strongest
    /// durability, paid for in append latency.
    Always,
    /// Appends run on a background writer thread that syncs once every N
    /// records; a crash can lose at most the last N−1 acknowledged records.
    EveryN(u32),
    /// Background writer, no explicit sync — the OS flushes its page cache
    /// on its own schedule. Survives a killed process, not a power cut.
    OsDefault,
}

impl FsyncPolicy {
    /// A short stable label (`always` / `every64` / `os`), used by bench
    /// rows and the run report.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every{n}"),
            FsyncPolicy::OsDefault => "os".to_string(),
        }
    }
}

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The injected disk-full budget is exhausted.
    DiskFull,
    /// The store failed earlier (I/O error or disk-full) and now rejects
    /// writes; reads remain valid.
    Failed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::DiskFull => write!(f, "store disk-full budget exhausted"),
            StoreError::Failed => write!(f, "store is failed; writes rejected"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Record kind used for committed blocks in the block log.
pub const REC_BLOCK: u8 = 0x01;

/// Everything replayed from disk when a store is opened.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Block-log records in append order: the node's persisted ledger.
    pub blocks: Vec<Record>,
    /// WAL records in append order: the pre-crash protocol state.
    pub wal: Vec<Record>,
}

/// The two logs of one node.
struct Logs {
    blocks: SegmentedLog,
    wal: SegmentedLog,
}

impl Logs {
    fn sync(&mut self) {
        let _ = self.blocks.sync();
        let _ = self.wal.sync();
    }
}

/// Commands accepted by the background writer.
enum Cmd {
    Block(u8, Vec<u8>),
    Wal(u8, Vec<u8>),
    Flush(SyncSender<()>),
}

enum Mode {
    /// [`FsyncPolicy::Always`]: appends run (and sync) on the caller.
    Sync(Box<Mutex<Logs>>),
    /// Buffered policies: appends are queued to a writer thread — the
    /// persistence pipeline stage that keeps disk I/O off the consensus
    /// hot path.
    Async {
        tx: Mutex<Option<Sender<Cmd>>>,
        handle: Option<JoinHandle<()>>,
    },
}

/// One node's durable storage: block log + WAL behind an [`FsyncPolicy`].
///
/// Dropping the store flushes and joins the writer thread, so a *graceful*
/// teardown persists everything queued; only a hard kill (or an injected
/// fault) exercises the torn-tail replay path.
pub struct NodeStore {
    dir: PathBuf,
    policy: FsyncPolicy,
    failed: Arc<AtomicBool>,
    mode: Mode,
}

impl NodeStore {
    /// Opens (or creates) the store under `dir`, replaying all existing
    /// records. Torn or corrupt tails are truncated to the last valid
    /// record. An armed disk-full budget ([`inject::set_disk_full`]) is
    /// honored for the new session.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(Self, RecoveredState), StoreError> {
        let budget = inject::disk_full_budget(dir);
        let (blocks, block_records) =
            SegmentedLog::open(dir, "blocks", DEFAULT_RECORDS_PER_SEGMENT, policy, budget)?;
        let (wal, wal_records) = SegmentedLog::open(dir, "wal", u32::MAX, policy, budget)?;
        let recovered = RecoveredState {
            blocks: block_records,
            wal: wal_records,
        };
        let failed = Arc::new(AtomicBool::new(false));
        let logs = Logs { blocks, wal };
        let mode = match policy {
            FsyncPolicy::Always => Mode::Sync(Box::new(Mutex::new(logs))),
            FsyncPolicy::EveryN(_) | FsyncPolicy::OsDefault => {
                let (tx, rx) = mpsc::channel();
                let flag = failed.clone();
                let handle = std::thread::Builder::new()
                    .name("fireledger-store".into())
                    .spawn(move || writer_loop(logs, rx, flag))
                    .map_err(StoreError::Io)?;
                Mode::Async {
                    tx: Mutex::new(Some(tx)),
                    handle: Some(handle),
                }
            }
        };
        Ok((
            NodeStore {
                dir: dir.to_path_buf(),
                policy,
                failed,
                mode,
            },
            recovered,
        ))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy the store was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// True once an append has failed; the store keeps rejecting writes but
    /// everything persisted so far stays replayable.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Appends a committed-block record to the block log.
    pub fn append_block(&self, payload: Vec<u8>) -> Result<(), StoreError> {
        self.append(Cmd::Block(REC_BLOCK, payload))
    }

    /// Appends a protocol-state record to the WAL.
    pub fn append_wal(&self, kind: u8, payload: Vec<u8>) -> Result<(), StoreError> {
        self.append(Cmd::Wal(kind, payload))
    }

    fn append(&self, cmd: Cmd) -> Result<(), StoreError> {
        if self.is_failed() {
            return Err(StoreError::Failed);
        }
        match &self.mode {
            Mode::Sync(logs) => {
                let mut logs = logs.lock().expect("store lock");
                let r = match cmd {
                    Cmd::Block(kind, payload) => logs.blocks.append(kind, &payload),
                    Cmd::Wal(kind, payload) => logs.wal.append(kind, &payload),
                    Cmd::Flush(ack) => {
                        logs.sync();
                        let _ = ack.send(());
                        Ok(())
                    }
                };
                if r.is_err() {
                    self.failed.store(true, Ordering::Release);
                }
                r
            }
            Mode::Async { tx, .. } => {
                let tx = tx.lock().expect("store sender lock");
                match tx.as_ref() {
                    Some(tx) if tx.send(cmd).is_ok() => Ok(()),
                    _ => {
                        self.failed.store(true, Ordering::Release);
                        Err(StoreError::Failed)
                    }
                }
            }
        }
    }

    /// Drains the writer queue and forces everything to disk. A barrier for
    /// tests and graceful shutdown; the `Always` policy makes it a no-op
    /// beyond a sync.
    pub fn flush(&self) {
        let (ack_tx, ack_rx): (SyncSender<()>, Receiver<()>) = sync_channel(1);
        if self.append(Cmd::Flush(ack_tx)).is_ok() {
            if let Mode::Async { .. } = self.mode {
                let _ = ack_rx.recv();
            }
        }
    }
}

impl Drop for NodeStore {
    fn drop(&mut self) {
        match &mut self.mode {
            Mode::Async { tx, handle } => {
                // Hang up the channel; the writer drains, syncs and exits.
                if let Ok(tx) = tx.get_mut() {
                    tx.take();
                }
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
            }
            Mode::Sync(logs) => {
                if let Ok(logs) = logs.get_mut() {
                    logs.sync();
                }
            }
        }
    }
}

/// The background persister: applies queued appends, honoring the log's
/// own fsync cadence. After the first failure the failed flag is raised and
/// subsequent appends are discarded (the queue keeps draining so producers
/// never block on a dead disk).
fn writer_loop(mut logs: Logs, rx: Receiver<Cmd>, failed: Arc<AtomicBool>) {
    while let Ok(cmd) = rx.recv() {
        let r = match cmd {
            Cmd::Block(kind, payload) => logs.blocks.append(kind, &payload),
            Cmd::Wal(kind, payload) => logs.wal.append(kind, &payload),
            Cmd::Flush(ack) => {
                logs.sync();
                let _ = ack.send(());
                Ok(())
            }
        };
        if r.is_err() {
            failed.store(true, Ordering::Release);
        }
    }
    logs.sync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn tempdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fireledger-nodestore-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn blocks_and_wal_roundtrip_across_policies() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(4),
            FsyncPolicy::OsDefault,
        ] {
            let dir = tempdir(&format!("rt-{}", policy.label()));
            let (store, recovered) = NodeStore::open(&dir, policy).unwrap();
            assert!(recovered.blocks.is_empty() && recovered.wal.is_empty());
            for i in 0..10u8 {
                store.append_block(vec![i; 16]).unwrap();
                store.append_wal(0x10, vec![i]).unwrap();
            }
            drop(store); // graceful: flushes the writer queue
            let (_, recovered) = NodeStore::open(&dir, policy).unwrap();
            assert_eq!(recovered.blocks.len(), 10, "policy {policy:?}");
            assert_eq!(recovered.wal.len(), 10, "policy {policy:?}");
            assert_eq!(recovered.blocks[3], (REC_BLOCK, vec![3; 16]));
            assert_eq!(recovered.wal[7], (0x10, vec![7]));
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_write_injection_recovers_to_last_valid_record() {
        let dir = tempdir("torn");
        let (store, _) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        for i in 0..5u8 {
            store.append_block(vec![i; 32]).unwrap();
        }
        drop(store);
        assert!(inject::torn_write(&dir, 10).unwrap() > 0);
        let (_, recovered) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.blocks.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_tail_injection_recovers_to_last_valid_record() {
        let dir = tempdir("corrupt");
        let (store, _) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        for i in 0..5u8 {
            store.append_block(vec![i; 32]).unwrap();
        }
        drop(store);
        assert!(inject::corrupt_tail(&dir).unwrap());
        let (store, recovered) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.blocks.len(), 4);
        // The store stays appendable after tail truncation.
        store.append_block(vec![9; 32]).unwrap();
        drop(store);
        let (_, again) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(again.blocks.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_fault_fails_appends_and_preserves_prefix() {
        let dir = tempdir("full");
        let (store, _) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        store.append_block(vec![1; 64]).unwrap();
        drop(store);
        inject::set_disk_full(&dir, 100).unwrap();
        let (store, recovered) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.blocks.len(), 1);
        store.append_block(vec![2; 64]).unwrap();
        assert!(store.append_block(vec![3; 64]).is_err());
        assert!(store.is_failed());
        drop(store);
        let (_, again) = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(again.blocks.len(), 2, "persisted prefix must survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn async_failure_is_reported_on_later_appends() {
        let dir = tempdir("async-full");
        inject::set_disk_full(&dir, 40).unwrap();
        let (store, _) = NodeStore::open(&dir, FsyncPolicy::EveryN(2)).unwrap();
        store.append_block(vec![1; 64]).unwrap(); // queued; fails in the writer
        store.flush();
        assert!(store.is_failed());
        assert!(matches!(
            store.append_block(vec![2; 8]).unwrap_err(),
            StoreError::Failed
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
