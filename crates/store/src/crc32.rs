//! CRC-32/ISO-HDLC ("IEEE", the zlib/Ethernet polynomial), table-driven.
//!
//! Every on-disk record and segment footer carries one of these checksums;
//! replay treats a mismatch as the start of a torn tail. The parameters are
//! the classic ones — polynomial `0xEDB88320` (reflected), initial value
//! `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — so the values can be checked
//! against any external `crc32` tool.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 state: feed byte slices with [`Crc32::update`], read
/// the digest with [`Crc32::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh CRC state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The universal CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_incremental_updates() {
        assert_eq!(crc32(b""), 0);
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"fireledger");
        for i in 0..10 * 8 {
            let mut flipped = *b"fireledger";
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} flip went undetected");
        }
    }
}
