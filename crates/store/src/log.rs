//! The segmented append-only log.
//!
//! One log is a directory of files sharing a prefix:
//!
//! ```text
//! <prefix>-000000.seg     sealed: records + index footer, never written again
//! <prefix>-000001.seg
//! <prefix>-000002.log     active: records only, appended in place
//! ```
//!
//! Appends go to the single active `.log` file; once it holds
//! `records_per_segment` records it is **sealed** — the index footer is
//! appended, the file is synced and renamed to `.seg` — and a fresh active
//! file is started. Replay reads sealed segments through their footer
//! (falling back to a scan when the footer does not validate) and scans the
//! active file, truncating any torn or corrupt tail back to the last valid
//! record. The log's generic currency is `(kind, payload)` records; what the
//! payloads mean is the caller's business.

use crate::record::{
    decode_footer, encode_footer, encode_record, scan_records, Record, RECORD_HEADER_LEN,
};
use crate::{FsyncPolicy, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Number of records per sealed segment used by [`crate::NodeStore`].
pub const DEFAULT_RECORDS_PER_SEGMENT: u32 = 256;

/// A segmented append-only record log rooted in one directory.
pub struct SegmentedLog {
    dir: PathBuf,
    prefix: String,
    records_per_segment: u32,
    policy: FsyncPolicy,
    /// The active `.log` file, its sequence number and its record offsets.
    active: File,
    active_seq: u64,
    active_len: u64,
    active_offsets: Vec<u64>,
    /// Appends since the last fsync (the `EveryN` counter).
    unsynced: u32,
    /// Total payload bytes appended in this session (the disk-full budget
    /// counts these, mirroring a filesystem quota).
    appended_bytes: u64,
    /// Remaining byte budget when a disk-full fault is injected.
    byte_budget: Option<u64>,
    /// Set after the first failed append: the log stays readable but
    /// rejects further writes.
    failed: bool,
}

impl SegmentedLog {
    /// Opens (or creates) the log under `dir` with the given file `prefix`,
    /// replaying every existing record. Sealed segments are read through
    /// their footer; the active file's torn or corrupt tail, if any, is
    /// truncated to the last valid record so subsequent appends extend a
    /// clean prefix. `byte_budget` caps total appended payload bytes
    /// (disk-full injection).
    pub fn open(
        dir: &Path,
        prefix: &str,
        records_per_segment: u32,
        policy: FsyncPolicy,
        byte_budget: Option<u64>,
    ) -> Result<(Self, Vec<Record>), StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut sealed: Vec<(u64, PathBuf)> = Vec::new();
        let mut actives: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_prefix(&format!("{prefix}-")) else {
                continue;
            };
            if let Some(seq) = stem.strip_suffix(".seg").and_then(|s| s.parse().ok()) {
                sealed.push((seq, path));
            } else if let Some(seq) = stem.strip_suffix(".log").and_then(|s| s.parse().ok()) {
                actives.push((seq, path));
            }
        }
        sealed.sort();
        actives.sort();

        let mut records = Vec::new();
        for (_, path) in &sealed {
            records.extend(read_sealed(path)?);
        }
        // At most one active file exists in a clean history; a crash between
        // sealing and starting the next segment can leave several, so all
        // but the newest are replayed as if sealed (scan, no truncation —
        // they are never appended to again).
        let (active_seq, active_path) = match actives.last() {
            Some((seq, path)) => {
                for (_, older) in &actives[..actives.len() - 1] {
                    let bytes = std::fs::read(older)?;
                    records.extend(scan_records(&bytes).0);
                }
                (*seq, path.clone())
            }
            None => {
                let seq = sealed.last().map(|(s, _)| s + 1).unwrap_or(0);
                (seq, segment_path(dir, prefix, seq, false))
            }
        };

        // Scan the active file and cut back any invalid tail.
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&active_path)?;
        let mut bytes = Vec::new();
        active.read_to_end(&mut bytes)?;
        let (active_records, valid_len) = scan_records(&bytes);
        if (valid_len as u64) < bytes.len() as u64 {
            active.set_len(valid_len as u64)?;
            active.sync_data()?;
        }
        active.seek(SeekFrom::Start(valid_len as u64))?;
        let mut active_offsets = Vec::with_capacity(active_records.len());
        let mut off = 0u64;
        for (_, payload) in &active_records {
            active_offsets.push(off);
            off += (RECORD_HEADER_LEN + payload.len()) as u64;
        }
        records.extend(active_records);

        Ok((
            SegmentedLog {
                dir: dir.to_path_buf(),
                prefix: prefix.to_string(),
                records_per_segment: records_per_segment.max(1),
                policy,
                active,
                active_seq,
                active_len: valid_len as u64,
                active_offsets,
                unsynced: 0,
                appended_bytes: 0,
                byte_budget,
                failed: false,
            },
            records,
        ))
    }

    /// Appends one record, sealing the active segment when it is full and
    /// syncing according to the fsync policy. After the first error the log
    /// is failed: reads stay valid, every further append returns
    /// [`StoreError::Failed`].
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        if self.failed {
            return Err(StoreError::Failed);
        }
        if let Some(budget) = self.byte_budget {
            if self.appended_bytes + payload.len() as u64 > budget {
                self.failed = true;
                return Err(StoreError::DiskFull);
            }
        }
        let encoded = encode_record(kind, payload);
        if let Err(e) = self.active.write_all(&encoded) {
            self.failed = true;
            return Err(e.into());
        }
        self.active_offsets.push(self.active_len);
        self.active_len += encoded.len() as u64;
        self.appended_bytes += payload.len() as u64;
        self.unsynced += 1;

        match self.policy {
            FsyncPolicy::Always => {
                self.active.sync_data()?;
                self.unsynced = 0;
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.active.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::OsDefault => {}
        }

        if self.active_offsets.len() as u32 >= self.records_per_segment {
            self.seal_active()?;
        }
        Ok(())
    }

    /// Seals the active file — footer, sync, rename to `.seg` — and starts
    /// the next active segment.
    fn seal_active(&mut self) -> Result<(), StoreError> {
        let footer = encode_footer(&self.active_offsets);
        self.active.write_all(&footer)?;
        self.active.sync_data()?;
        let from = segment_path(&self.dir, &self.prefix, self.active_seq, false);
        let to = segment_path(&self.dir, &self.prefix, self.active_seq, true);
        std::fs::rename(&from, &to)?;

        self.active_seq += 1;
        let next = segment_path(&self.dir, &self.prefix, self.active_seq, false);
        self.active = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&next)?;
        self.active_len = 0;
        self.active_offsets.clear();
        self.unsynced = 0;
        Ok(())
    }

    /// Forces buffered appends to disk regardless of policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.active.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Number of records in the (unsealed) active segment.
    pub fn active_records(&self) -> usize {
        self.active_offsets.len()
    }

    /// True once an append has failed (I/O error or exhausted disk budget).
    pub fn is_failed(&self) -> bool {
        self.failed
    }
}

/// Reads a sealed segment. The footer is the fast path; a segment whose
/// footer does not validate is scanned record by record instead, so footer
/// corruption degrades to a slower read, never to data loss.
fn read_sealed(path: &Path) -> Result<Vec<Record>, StoreError> {
    let bytes = std::fs::read(path)?;
    if let Some((offsets, region)) = decode_footer(&bytes) {
        let (records, valid) = scan_records(&bytes[..region]);
        if records.len() == offsets.len() && valid == region {
            return Ok(records);
        }
    }
    Ok(scan_records(&bytes).0)
}

/// `<dir>/<prefix>-<seq:06>.{log,seg}`.
fn segment_path(dir: &Path, prefix: &str, seq: u64, sealed: bool) -> PathBuf {
    let ext = if sealed { "seg" } else { "log" };
    dir.join(format!("{prefix}-{seq:06}.{ext}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tempdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fireledger-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path, per_seg: u32) -> (SegmentedLog, Vec<Record>) {
        SegmentedLog::open(dir, "blocks", per_seg, FsyncPolicy::OsDefault, None).unwrap()
    }

    #[test]
    fn appends_survive_reopen_across_segment_boundaries() {
        let dir = tempdir("reopen");
        let (mut log, recovered) = open(&dir, 4);
        assert!(recovered.is_empty());
        for i in 0..10u8 {
            log.append(0x01, &[i, i, i]).unwrap();
        }
        drop(log);
        // 10 records at 4/segment: 2 sealed segments + 2 in the active file.
        let sealed = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "seg")
            })
            .count();
        assert_eq!(sealed, 2);
        let (_, recovered) = open(&dir, 4);
        assert_eq!(recovered.len(), 10);
        for (i, (kind, payload)) in recovered.iter().enumerate() {
            assert_eq!(*kind, 0x01);
            assert_eq!(payload, &vec![i as u8; 3]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_active_tail_is_truncated_and_log_stays_appendable() {
        let dir = tempdir("torn");
        let (mut log, _) = open(&dir, 100);
        for i in 0..5u8 {
            log.append(0x01, &[i; 8]).unwrap();
        }
        drop(log);
        // Tear the last record: chop 4 bytes off the active file.
        let active = segment_path(&dir, "blocks", 0, false);
        let len = std::fs::metadata(&active).unwrap().len();
        let file = OpenOptions::new().write(true).open(&active).unwrap();
        file.set_len(len - 4).unwrap();
        drop(file);

        let (mut log, recovered) = open(&dir, 100);
        assert_eq!(recovered.len(), 4, "torn record must be dropped");
        log.append(0x01, &[9; 8]).unwrap();
        drop(log);
        let (_, recovered) = open(&dir, 100);
        assert_eq!(recovered.len(), 5);
        assert_eq!(recovered[4].1, vec![9; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sealed_footer_falls_back_to_scan() {
        let dir = tempdir("footer");
        let (mut log, _) = open(&dir, 3);
        for i in 0..3u8 {
            log.append(0x01, &[i; 4]).unwrap();
        }
        drop(log);
        let sealed = segment_path(&dir, "blocks", 0, true);
        let mut bytes = std::fs::read(&sealed).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF; // corrupt the footer crc
        std::fs::write(&sealed, &bytes).unwrap();
        let (_, recovered) = open(&dir, 3);
        assert_eq!(recovered.len(), 3, "records must survive footer loss");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_budget_fails_appends_but_keeps_reads() {
        let dir = tempdir("full");
        let (mut log, _) =
            SegmentedLog::open(&dir, "blocks", 100, FsyncPolicy::Always, Some(20)).unwrap();
        log.append(0x01, &[1; 10]).unwrap();
        log.append(0x01, &[2; 10]).unwrap();
        let err = log.append(0x01, &[3; 10]).unwrap_err();
        assert!(matches!(err, StoreError::DiskFull));
        assert!(log.is_failed());
        assert!(matches!(
            log.append(0x01, &[4; 1]).unwrap_err(),
            StoreError::Failed
        ));
        drop(log);
        let (_, recovered) = open(&dir, 100);
        assert_eq!(recovered.len(), 2, "the persisted prefix stays readable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn property_any_garbage_tail_recovers_exactly_the_prefix() {
        // A DetRng-style LCG keeps the test dependency-free and repeatable.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for case in 0..50 {
            let dir = tempdir(&format!("prop{case}"));
            let (mut log, _) = open(&dir, 7);
            let prefix_len = (rng() % 20) as usize;
            for i in 0..prefix_len {
                let payload: Vec<u8> = (0..(rng() % 64) as usize).map(|j| (i + j) as u8).collect();
                log.append(0x01, &payload).unwrap();
            }
            drop(log);
            // Arbitrary garbage tail appended to the active file.
            let active_path = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .find(|p| p.extension().is_some_and(|x| x == "log"))
                .unwrap();
            let garbage: Vec<u8> = (0..(rng() % 200) as usize)
                .map(|_| (rng() & 0xFF) as u8)
                .collect();
            let mut f = OpenOptions::new().append(true).open(&active_path).unwrap();
            f.write_all(&garbage).unwrap();
            drop(f);

            let (mut log, recovered) = open(&dir, 7);
            // Exactly the prefix: garbage may accidentally start with the
            // record magic + a valid crc only with ~2^-32 probability.
            assert_eq!(recovered.len(), prefix_len, "case {case}");
            // Re-append after recovery stays readable.
            log.append(0x02, b"after").unwrap();
            drop(log);
            let (_, again) = open(&dir, 7);
            assert_eq!(again.len(), prefix_len + 1, "case {case} re-append");
            assert_eq!(again[prefix_len], (0x02, b"after".to_vec()));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
