//! Disk-fault injection against a node's store directory.
//!
//! These helpers damage the **files** of a closed store the way real crashes
//! and media faults do, so the replay path is exercised under adversity:
//!
//! * [`torn_write`] — a write that made it only partway to the platter: the
//!   active log loses its last `cut` bytes;
//! * [`corrupt_tail`] — silent media corruption: one bit of the active
//!   log's final record is flipped (framing stays plausible, the CRC does
//!   not);
//! * [`set_disk_full`] — an exhausted volume: a budget file the next
//!   [`crate::NodeStore::open`] honors, failing appends past the byte
//!   budget while reads keep working.
//!
//! All three operate on the block log's active file (`blocks-*.log`); they
//! are meant to run between a kill and a restart, never against an open
//! store.

use crate::StoreError;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Name of the disk-full budget control file inside a store directory.
pub const DISK_FULL_FILE: &str = "disk.full";

/// The active (unsealed) block-log file of the store under `dir`, if one
/// exists.
fn active_block_log(dir: &Path) -> Result<Option<PathBuf>, StoreError> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut actives: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("blocks-") && n.ends_with(".log"))
        })
        .collect();
    actives.sort();
    Ok(actives.pop())
}

/// Truncates the store's active block log by `cut` bytes (clamped to the
/// file size), simulating a torn write at that offset from the end. Returns
/// the number of bytes actually removed.
pub fn torn_write(dir: &Path, cut: u64) -> Result<u64, StoreError> {
    let Some(path) = active_block_log(dir)? else {
        return Ok(0);
    };
    let len = std::fs::metadata(&path)?.len();
    let cut = cut.min(len);
    let file = OpenOptions::new().write(true).open(&path)?;
    file.set_len(len - cut)?;
    file.sync_data()?;
    Ok(cut)
}

/// Flips one bit in the last byte of the store's active block log,
/// corrupting the tail record in place (length and magic stay intact, the
/// checksum no longer matches). Returns `false` when the log is empty.
pub fn corrupt_tail(dir: &Path) -> Result<bool, StoreError> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let Some(path) = active_block_log(dir)? else {
        return Ok(false);
    };
    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(false);
    }
    file.seek(SeekFrom::End(-1))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0x01;
    file.seek(SeekFrom::End(-1))?;
    file.write_all(&byte)?;
    file.sync_data()?;
    Ok(true)
}

/// Arms a disk-full fault: the next [`crate::NodeStore::open`] on `dir`
/// fails appends once `after_bytes` of payload have been written in that
/// session, while replay and reads keep working.
pub fn set_disk_full(dir: &Path, after_bytes: u64) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(DISK_FULL_FILE), after_bytes.to_string())?;
    Ok(())
}

/// Reads (without clearing) an armed disk-full budget.
pub fn disk_full_budget(dir: &Path) -> Option<u64> {
    std::fs::read_to_string(dir.join(DISK_FULL_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
}
