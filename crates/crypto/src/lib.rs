//! # fireledger-crypto
//!
//! Hashing, merkle trees, ECDSA (secp256k1) signatures, a key directory, and a
//! calibrated CPU cost model for the FireLedger workspace.
//!
//! The paper signs block headers with ECDSA over the secp256k1 curve and
//! hashes every transaction of a block before signing (§7.1). This crate
//! reproduces that pipeline with the `k256` and `sha2` crates, and also offers
//! a cheap *simulated* signature scheme for large discrete-event simulations
//! in which paying real asymmetric-crypto CPU time for thousands of simulated
//! nodes would make experiments needlessly slow. The cost of the real
//! operations is captured by [`CostModel`], which the simulator uses to charge
//! virtual CPU time, so switching to simulated signatures does not change the
//! *modelled* performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod hash;
pub mod keys;
pub mod merkle;

pub use cost::CostModel;
pub use hash::{hash_bytes, hash_concat, hash_header, hash_transaction};
pub use keys::{CryptoProvider, EcdsaKeyStore, SharedCrypto, SimKeyStore};
pub use merkle::{merkle_root, MerkleTree};
