//! # fireledger-crypto
//!
//! Hashing, merkle trees, signatures, a key directory, and a calibrated CPU
//! cost model for the FireLedger workspace.
//!
//! The paper signs block headers with ECDSA over the secp256k1 curve and
//! hashes every transaction of a block before signing (§7.1). This workspace
//! builds offline from the standard library alone, so the pipeline is
//! reproduced with a self-contained SHA-256 ([`sha256::Sha256`]) and a real
//! public-key hash-based signature scheme ([`LamportKeyStore`]); a cheap
//! *simulated* MAC scheme ([`SimKeyStore`]) keeps large discrete-event
//! simulations fast. The cost of the paper's ECDSA operations is captured by
//! [`CostModel`], which the simulator uses to charge virtual CPU time, so the
//! scheme substitution does not change the *modelled* performance.

// `deny` rather than the workspace's usual `forbid`: the SHA-256 hardware
// back-end ([`sha256`]'s `ni` module) is the one place this crate needs
// `unsafe` — runtime-detected x86-64 SHA-extension intrinsics, scoped to a
// single module with its safety argument and differential tests alongside.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod hash;
pub mod keys;
pub mod merkle;
pub mod pool;
pub mod sha256;

pub use cost::CostModel;
pub use hash::{hash_bytes, hash_concat, hash_header, hash_transaction};
pub use keys::{verify_header_cached, CryptoProvider, LamportKeyStore, SharedCrypto, SimKeyStore};
pub use merkle::{block_payload_root, merkle_root, merkle_root_into, MerkleTree};
pub use pool::{CryptoPool, SharedPool, VerifyItem};
