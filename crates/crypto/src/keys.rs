//! Keys, signing and the cluster key directory.
//!
//! Permissioned blockchains assume an a-priori PKI (§2 of the paper): every
//! node knows every other node's public key. [`CryptoProvider`] captures the
//! operations the protocols need — sign as a node, verify a signature claimed
//! to be from a node — behind a trait so two implementations can be swapped:
//!
//! * [`EcdsaKeyStore`] — real ECDSA over secp256k1 (the paper's scheme),
//!   backed by the `k256` crate. Used by the examples, the threaded runtime
//!   and the crypto micro-benchmarks.
//! * [`SimKeyStore`] — a hash-based stand-in whose signatures are
//!   deterministic MAC-like digests. It is orders of magnitude cheaper, which
//!   keeps large discrete-event simulations fast; the *modelled* CPU cost of
//!   real signatures is still charged through [`crate::CostModel`].
//!
//! Both stores hold keys for the whole cluster because the workspace runs all
//! nodes in one process. A production deployment would hold only the local
//! secret key plus the directory of public keys; the trait is deliberately
//! compatible with that split.

use crate::cost::CostModel;
use crate::hash::hash_bytes;
use fireledger_types::{NodeId, Signature};
use k256::ecdsa::signature::{Signer, Verifier};
use k256::ecdsa::{Signature as EcdsaSignature, SigningKey, VerifyingKey};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;

/// Shared handle to a cluster crypto provider.
pub type SharedCrypto = Arc<dyn CryptoProvider>;

/// Signing and verification for a permissioned cluster.
pub trait CryptoProvider: Send + Sync {
    /// Signs `msg` with `node`'s secret key.
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature;

    /// Verifies that `sig` is `node`'s signature over `msg`.
    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool;

    /// Number of nodes with registered keys.
    fn cluster_size(&self) -> usize;

    /// The CPU cost model associated with this provider (used by the
    /// simulator to charge virtual signing/verification time).
    fn cost_model(&self) -> CostModel;

    /// Human-readable scheme name for logs and reports.
    fn scheme(&self) -> &'static str;
}

/// Real ECDSA secp256k1 keys for every node of a cluster.
pub struct EcdsaKeyStore {
    signing: Vec<SigningKey>,
    verifying: Vec<VerifyingKey>,
    cost: CostModel,
}

impl EcdsaKeyStore {
    /// Generates keys for `n` nodes from a deterministic seed (reproducible
    /// test clusters).
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let mut signing = Vec::with_capacity(n);
        let mut verifying = Vec::with_capacity(n);
        for _ in 0..n {
            let sk = SigningKey::random(&mut rng);
            verifying.push(*sk.verifying_key());
            signing.push(sk);
        }
        EcdsaKeyStore {
            signing,
            verifying,
            cost: CostModel::m5_xlarge(),
        }
    }

    /// Overrides the cost model reported by this store.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Returns the verifying (public) key of `node`, if registered.
    pub fn verifying_key(&self, node: NodeId) -> Option<&VerifyingKey> {
        self.verifying.get(node.as_usize())
    }

    /// Wraps the store into a [`SharedCrypto`] handle.
    pub fn shared(self) -> SharedCrypto {
        Arc::new(self)
    }
}

impl CryptoProvider for EcdsaKeyStore {
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature {
        let key = self
            .signing
            .get(node.as_usize())
            .unwrap_or_else(|| panic!("no signing key for {node}"));
        let sig: EcdsaSignature = key.sign(msg);
        Signature(sig.to_vec())
    }

    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool {
        let Some(key) = self.verifying.get(node.as_usize()) else {
            return false;
        };
        let Ok(parsed) = EcdsaSignature::from_slice(sig.as_bytes()) else {
            return false;
        };
        key.verify(msg, &parsed).is_ok()
    }

    fn cluster_size(&self) -> usize {
        self.signing.len()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn scheme(&self) -> &'static str {
        "ecdsa-secp256k1"
    }
}

/// A cheap, deterministic, hash-based signature stand-in for simulations.
///
/// `sign(node, msg) = SHA-256(secret_node || msg)` where `secret_node` is a
/// per-node secret derived from the cluster seed. Verification recomputes the
/// digest, which requires knowing the secret — acceptable inside a single
/// simulation process where the "adversary" is scripted rather than
/// cryptographic. The simulator still charges the real ECDSA cost through the
/// cost model, so performance results are unaffected by the substitution.
pub struct SimKeyStore {
    secrets: Vec<[u8; 32]>,
    cost: CostModel,
}

impl SimKeyStore {
    /// Creates a store for `n` nodes derived from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let secrets = (0..n)
            .map(|i| {
                let mut pre = Vec::with_capacity(16);
                pre.extend_from_slice(&seed.to_be_bytes());
                pre.extend_from_slice(&(i as u64).to_be_bytes());
                *hash_bytes(&pre).as_bytes()
            })
            .collect();
        SimKeyStore {
            secrets,
            cost: CostModel::m5_xlarge(),
        }
    }

    /// Overrides the cost model reported by this store.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Wraps the store into a [`SharedCrypto`] handle.
    pub fn shared(self) -> SharedCrypto {
        Arc::new(self)
    }
}

impl CryptoProvider for SimKeyStore {
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature {
        let secret = self
            .secrets
            .get(node.as_usize())
            .unwrap_or_else(|| panic!("no secret for {node}"));
        let mut pre = Vec::with_capacity(32 + msg.len());
        pre.extend_from_slice(secret);
        pre.extend_from_slice(msg);
        let digest = hash_bytes(&pre);
        Signature(digest.as_bytes().to_vec())
    }

    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool {
        if node.as_usize() >= self.secrets.len() {
            return false;
        }
        self.sign(node, msg) == *sig
    }

    fn cluster_size(&self) -> usize {
        self.secrets.len()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn scheme(&self) -> &'static str {
        "sim-hmac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_provider(provider: &dyn CryptoProvider) {
        let msg = b"block header bytes";
        let sig = provider.sign(NodeId(0), msg);
        assert!(provider.verify(NodeId(0), msg, &sig));
        // Wrong node.
        assert!(!provider.verify(NodeId(1), msg, &sig));
        // Wrong message.
        assert!(!provider.verify(NodeId(0), b"tampered", &sig));
        // Corrupted signature.
        let mut bad = sig.clone();
        if let Some(b) = bad.0.first_mut() {
            *b ^= 0xff;
        }
        assert!(!provider.verify(NodeId(0), msg, &bad));
        // Unknown node.
        assert!(!provider.verify(NodeId(99), msg, &sig));
    }

    #[test]
    fn ecdsa_sign_verify_roundtrip() {
        let store = EcdsaKeyStore::generate(4, 7);
        check_provider(&store);
        assert_eq!(store.cluster_size(), 4);
        assert_eq!(store.scheme(), "ecdsa-secp256k1");
        assert!(store.verifying_key(NodeId(3)).is_some());
        assert!(store.verifying_key(NodeId(4)).is_none());
    }

    #[test]
    fn sim_sign_verify_roundtrip() {
        let store = SimKeyStore::generate(4, 7);
        check_provider(&store);
        assert_eq!(store.cluster_size(), 4);
        assert_eq!(store.scheme(), "sim-hmac");
    }

    #[test]
    fn ecdsa_generation_is_deterministic_per_seed() {
        let a = EcdsaKeyStore::generate(2, 42);
        let b = EcdsaKeyStore::generate(2, 42);
        let c = EcdsaKeyStore::generate(2, 43);
        let msg = b"determinism";
        assert_eq!(a.sign(NodeId(0), msg), b.sign(NodeId(0), msg));
        assert_ne!(a.sign(NodeId(0), msg), c.sign(NodeId(0), msg));
    }

    #[test]
    fn sim_signatures_differ_across_nodes_and_seeds() {
        let a = SimKeyStore::generate(3, 1);
        let b = SimKeyStore::generate(3, 2);
        let msg = b"x";
        assert_ne!(a.sign(NodeId(0), msg), a.sign(NodeId(1), msg));
        assert_ne!(a.sign(NodeId(0), msg), b.sign(NodeId(0), msg));
    }

    #[test]
    fn malformed_signature_rejected() {
        let store = EcdsaKeyStore::generate(1, 1);
        assert!(!store.verify(NodeId(0), b"m", &Signature(vec![1, 2, 3])));
        assert!(!store.verify(NodeId(0), b"m", &Signature::empty()));
    }

    #[test]
    fn shared_handles_are_usable_as_trait_objects() {
        let shared: SharedCrypto = SimKeyStore::generate(4, 9).shared();
        let sig = shared.sign(NodeId(2), b"hello");
        assert!(shared.verify(NodeId(2), b"hello", &sig));
    }
}
