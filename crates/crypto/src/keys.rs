//! Keys, signing and the cluster key directory.
//!
//! Permissioned blockchains assume an a-priori PKI (§2 of the paper): every
//! node knows every other node's public key. [`CryptoProvider`] captures the
//! operations the protocols need — sign as a node, verify a signature claimed
//! to be from a node — behind a trait so implementations can be swapped:
//!
//! * [`LamportKeyStore`] — a real public-key signature scheme (Lamport
//!   one-time signatures over SHA-256), implementable from the standard
//!   library alone. Verification genuinely needs only the signer's public
//!   key. It stands in for the paper's ECDSA/secp256k1 where the build must
//!   stay dependency-free; note that reusing a Lamport key across messages
//!   leaks secret material, so this store is for benchmarking and
//!   demonstration, not production deployments.
//! * [`SimKeyStore`] — a hash-based MAC stand-in whose signatures are
//!   deterministic digests. It is orders of magnitude cheaper, which keeps
//!   large discrete-event simulations fast; the *modelled* CPU cost of real
//!   ECDSA signatures is still charged through [`crate::CostModel`], so the
//!   substitution does not change modelled performance.
//!
//! Both stores hold keys for the whole cluster because the workspace runs all
//! nodes in one process. A production deployment would hold only the local
//! secret key plus the directory of public keys; the trait is deliberately
//! compatible with that split.

use crate::cost::CostModel;
use crate::hash::hash_bytes;
use crate::sha256::Sha256;
use fireledger_types::{NodeId, Signature, SignedHeader};
use std::sync::Arc;

/// Shared handle to a cluster crypto provider.
pub type SharedCrypto = Arc<dyn CryptoProvider>;

/// Verifies a signed header's proposer signature, memoized per value
/// through [`SignedHeader::sig_cache`].
///
/// The first call on a given header value pays `crypto.verify`; every later
/// call on the *same value* reads the cached verdict. Because moves keep
/// the cache and clones reset it, this is what connects off-loop
/// verification to the consensus loop: a pre-verify stage checks the header
/// on its own thread, the verified value moves into the node loop, and the
/// protocol's own check here becomes a cache read. Code that re-derives a
/// header (decodes or clones it) re-verifies — the memo can never launder
/// an unverified value.
pub fn verify_header_cached(crypto: &dyn CryptoProvider, signed: &SignedHeader) -> bool {
    signed.sig_cache().get_or_init(|| {
        crypto.verify(
            signed.proposer(),
            &signed.header.canonical_bytes(),
            &signed.signature,
        )
    })
}

/// Signing and verification for a permissioned cluster.
pub trait CryptoProvider: Send + Sync {
    /// Signs `msg` with `node`'s secret key.
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature;

    /// Verifies that `sig` is `node`'s signature over `msg`.
    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool;

    /// Number of nodes with registered keys.
    fn cluster_size(&self) -> usize;

    /// The CPU cost model associated with this provider (used by the
    /// simulator to charge virtual signing/verification time).
    fn cost_model(&self) -> CostModel;

    /// Human-readable scheme name for logs and reports.
    fn scheme(&self) -> &'static str;
}

/// Number of 32-byte secret values per Lamport key: one pair per digest bit.
const LAMPORT_VALUES: usize = 512;
/// Size of a Lamport signature: one revealed 32-byte value per digest bit.
pub const LAMPORT_SIG_BYTES: usize = 256 * 32;

/// A node's Lamport public key: the hash of every secret value.
#[derive(Clone)]
pub struct LamportPublicKey {
    hashes: Box<[[u8; 32]]>,
}

struct LamportKeyPair {
    secrets: Box<[[u8; 32]]>,
    public: LamportPublicKey,
}

/// Lamport one-time signatures over SHA-256 for every node of a cluster.
///
/// `sign` hashes the message and reveals, for each digest bit `i` with value
/// `v`, the secret value `sk[2 i + v]`; `verify` re-hashes the revealed
/// values and compares them against the signer's public key. Keys are derived
/// deterministically from the cluster seed so test clusters are reproducible.
pub struct LamportKeyStore {
    keys: Vec<LamportKeyPair>,
    cost: CostModel,
}

impl LamportKeyStore {
    /// Generates keys for `n` nodes from a deterministic seed.
    pub fn generate(n: usize, seed: u64) -> Self {
        let keys = (0..n)
            .map(|node| {
                let mut secrets = Vec::with_capacity(LAMPORT_VALUES);
                let mut hashes = Vec::with_capacity(LAMPORT_VALUES);
                for j in 0..LAMPORT_VALUES {
                    let mut pre = [0u8; 24];
                    pre[..8].copy_from_slice(&seed.to_be_bytes());
                    pre[8..16].copy_from_slice(&(node as u64).to_be_bytes());
                    pre[16..].copy_from_slice(&(j as u64).to_be_bytes());
                    let sk = *hash_bytes(&pre).as_bytes();
                    hashes.push(Sha256::digest(sk));
                    secrets.push(sk);
                }
                LamportKeyPair {
                    secrets: secrets.into_boxed_slice(),
                    public: LamportPublicKey {
                        hashes: hashes.into_boxed_slice(),
                    },
                }
            })
            .collect();
        LamportKeyStore {
            keys,
            cost: CostModel::m5_xlarge(),
        }
    }

    /// Overrides the cost model reported by this store.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Returns the public key of `node`, if registered.
    pub fn public_key(&self, node: NodeId) -> Option<&LamportPublicKey> {
        self.keys.get(node.as_usize()).map(|k| &k.public)
    }

    /// Wraps the store into a [`SharedCrypto`] handle.
    pub fn shared(self) -> SharedCrypto {
        Arc::new(self)
    }
}

impl CryptoProvider for LamportKeyStore {
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature {
        let key = self
            .keys
            .get(node.as_usize())
            .unwrap_or_else(|| panic!("no signing key for {node}"));
        let digest = Sha256::digest(msg);
        let mut out = Vec::with_capacity(LAMPORT_SIG_BYTES);
        for bit in 0..256 {
            let v = (digest[bit / 8] >> (7 - bit % 8)) & 1;
            out.extend_from_slice(&key.secrets[2 * bit + v as usize]);
        }
        Signature(out.into())
    }

    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool {
        let Some(key) = self.keys.get(node.as_usize()) else {
            return false;
        };
        if sig.0.len() != LAMPORT_SIG_BYTES {
            return false;
        }
        let digest = Sha256::digest(msg);
        for bit in 0..256 {
            let v = (digest[bit / 8] >> (7 - bit % 8)) & 1;
            let revealed = &sig.0[bit * 32..(bit + 1) * 32];
            if Sha256::digest(revealed) != key.public.hashes[2 * bit + v as usize] {
                return false;
            }
        }
        true
    }

    fn cluster_size(&self) -> usize {
        self.keys.len()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn scheme(&self) -> &'static str {
        "lamport-ots-sha256"
    }
}

/// A cheap, deterministic, hash-based signature stand-in for simulations.
///
/// `sign(node, msg) = SHA-256(secret_node || msg)` where `secret_node` is a
/// per-node secret derived from the cluster seed. Verification recomputes the
/// digest, which requires knowing the secret — acceptable inside a single
/// simulation process where the "adversary" is scripted rather than
/// cryptographic. The simulator still charges the real ECDSA cost through the
/// cost model, so performance results are unaffected by the substitution.
pub struct SimKeyStore {
    secrets: Vec<[u8; 32]>,
    cost: CostModel,
}

impl SimKeyStore {
    /// Creates a store for `n` nodes derived from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let secrets = (0..n)
            .map(|i| {
                let mut pre = Vec::with_capacity(16);
                pre.extend_from_slice(&seed.to_be_bytes());
                pre.extend_from_slice(&(i as u64).to_be_bytes());
                *hash_bytes(&pre).as_bytes()
            })
            .collect();
        SimKeyStore {
            secrets,
            cost: CostModel::m5_xlarge(),
        }
    }

    /// Overrides the cost model reported by this store.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Wraps the store into a [`SharedCrypto`] handle.
    pub fn shared(self) -> SharedCrypto {
        Arc::new(self)
    }
}

impl CryptoProvider for SimKeyStore {
    fn sign(&self, node: NodeId, msg: &[u8]) -> Signature {
        let secret = self
            .secrets
            .get(node.as_usize())
            .unwrap_or_else(|| panic!("no secret for {node}"));
        let mut pre = Vec::with_capacity(32 + msg.len());
        pre.extend_from_slice(secret);
        pre.extend_from_slice(msg);
        let digest = hash_bytes(&pre);
        Signature::from(digest.as_bytes().as_slice())
    }

    fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> bool {
        if node.as_usize() >= self.secrets.len() {
            return false;
        }
        self.sign(node, msg) == *sig
    }

    fn cluster_size(&self) -> usize {
        self.secrets.len()
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn scheme(&self) -> &'static str {
        "sim-hmac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_provider(provider: &dyn CryptoProvider) {
        let msg = b"block header bytes";
        let sig = provider.sign(NodeId(0), msg);
        assert!(provider.verify(NodeId(0), msg, &sig));
        // Wrong node.
        assert!(!provider.verify(NodeId(1), msg, &sig));
        // Wrong message.
        assert!(!provider.verify(NodeId(0), b"tampered", &sig));
        // Corrupted signature (Bytes storage is immutable: rebuild the
        // buffer with its first byte flipped).
        let mut bad_bytes = sig.as_bytes().to_vec();
        if let Some(b) = bad_bytes.first_mut() {
            *b ^= 0xff;
        }
        let bad = Signature::from(bad_bytes);
        assert!(!provider.verify(NodeId(0), msg, &bad));
        // Unknown node.
        assert!(!provider.verify(NodeId(99), msg, &sig));
    }

    #[test]
    fn lamport_sign_verify_roundtrip() {
        let store = LamportKeyStore::generate(4, 7);
        check_provider(&store);
        assert_eq!(store.cluster_size(), 4);
        assert_eq!(store.scheme(), "lamport-ots-sha256");
        assert!(store.public_key(NodeId(3)).is_some());
        assert!(store.public_key(NodeId(4)).is_none());
    }

    #[test]
    fn lamport_verification_uses_only_public_material() {
        // A verifier holding only the public key accepts exactly the signer's
        // signature: re-derive an independent store with the same seed and
        // check cross-verification, then check that a different seed fails.
        let signer = LamportKeyStore::generate(2, 42);
        let verifier = LamportKeyStore::generate(2, 42);
        let other = LamportKeyStore::generate(2, 43);
        let msg = b"determinism";
        let sig = signer.sign(NodeId(0), msg);
        assert!(verifier.verify(NodeId(0), msg, &sig));
        assert!(!other.verify(NodeId(0), msg, &sig));
    }

    #[test]
    fn sim_sign_verify_roundtrip() {
        let store = SimKeyStore::generate(4, 7);
        check_provider(&store);
        assert_eq!(store.cluster_size(), 4);
        assert_eq!(store.scheme(), "sim-hmac");
    }

    #[test]
    fn sim_signatures_differ_across_nodes_and_seeds() {
        let a = SimKeyStore::generate(3, 1);
        let b = SimKeyStore::generate(3, 2);
        let msg = b"x";
        assert_ne!(a.sign(NodeId(0), msg), a.sign(NodeId(1), msg));
        assert_ne!(a.sign(NodeId(0), msg), b.sign(NodeId(0), msg));
    }

    #[test]
    fn malformed_signature_rejected() {
        let store = LamportKeyStore::generate(1, 1);
        assert!(!store.verify(NodeId(0), b"m", &Signature::from(vec![1, 2, 3])));
        assert!(!store.verify(NodeId(0), b"m", &Signature::empty()));
    }

    #[test]
    fn shared_handles_are_usable_as_trait_objects() {
        let shared: SharedCrypto = SimKeyStore::generate(4, 9).shared();
        let sig = shared.sign(NodeId(2), b"hello");
        assert!(shared.verify(NodeId(2), b"hello", &sig));
    }
}
