//! A fixed-width parallel crypto pool: batch signature verification, batch
//! hashing, and parallel merkle construction on scoped worker threads.
//!
//! FireLedger's optimistic path keeps the *critical path* nearly
//! crypto-free, but a real node still has to pay for every header signature
//! and every block-body digest somewhere. [`CryptoPool`] is where: callers
//! collect a round's pending verifications (or a body's β leaf digests) and
//! hand them over as one batch, which the pool chunks across `threads`
//! scoped worker threads — `std::thread::scope`, so borrowed inputs need no
//! cloning and a panicking worker propagates after every sibling joined
//! (panic-safe join, no poisoned state left behind).
//!
//! ## Determinism
//!
//! Every result vector is **position-stable**: slot `i` of the output is
//! computed from item `i` of the input by the same pure function the
//! sequential path uses, and chunk boundaries are fixed by arithmetic on
//! the batch length — thread scheduling can never reorder or change
//! results. The equivalence property tests at the bottom of this file pin
//! `batch_verify`/`batch_hash`/`merkle_root_par` against their sequential
//! counterparts on randomized inputs.
//!
//! ## Sizing
//!
//! `CryptoPool::new` clamps the requested width to the machine's available
//! parallelism — on a single-core host every batch simply runs inline, so
//! requesting a 4-thread pool is never a pessimization. Batches smaller
//! than one chunk's worth of work per extra thread also run inline
//! ([`CryptoPool::SMALL_BATCH`]), so doctests and small clusters pay no
//! spawn cost at all.

use crate::hash::hash_bytes;
use crate::keys::SharedCrypto;
use crate::merkle::{fold_root_in_place, leaf_digests_into};
use fireledger_types::{Hash, NodeId, Signature, SignedHeader, Transaction};
use std::sync::Arc;

/// One signature check: `(claimed signer, message bytes, signature)`.
pub type VerifyItem<'a> = (NodeId, &'a [u8], &'a Signature);

/// Shared handle to a [`CryptoPool`].
pub type SharedPool = Arc<CryptoPool>;

/// A fixed-width batch crypto executor over a
/// [`CryptoProvider`](crate::CryptoProvider).
///
/// The pool is a cheap value (an `Arc` plus two integers): clone it freely
/// into every worker and runtime stage that needs batched crypto. Workers
/// are *scoped* — spawned per batch and joined before the call returns —
/// so the pool holds no long-lived threads and is trivially `Send + Sync`.
#[derive(Clone)]
pub struct CryptoPool {
    crypto: SharedCrypto,
    threads: usize,
}

impl CryptoPool {
    /// Batches smaller than this run inline even on a wide pool: the work
    /// has to outweigh a thread spawn (a few microseconds) to be worth
    /// fanning out.
    pub const SMALL_BATCH: usize = 16;

    /// Creates a pool over `crypto` with up to `threads` workers.
    ///
    /// The width is clamped to at least 1 and at most the machine's
    /// available parallelism — a pool wider than the machine would only add
    /// spawn overhead. Width 1 means every batch executes inline on the
    /// caller's thread.
    pub fn new(crypto: SharedCrypto, threads: usize) -> Self {
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CryptoPool {
            crypto,
            threads: threads.clamp(1, cap),
        }
    }

    /// A width-1 (fully inline) pool — the default for simulations, where
    /// determinism demands a thread-count-independent execution, and for
    /// small clusters.
    pub fn inline(crypto: SharedCrypto) -> Self {
        CryptoPool { crypto, threads: 1 }
    }

    /// Creates a pool with exactly `threads` workers, bypassing the
    /// available-parallelism clamp.
    ///
    /// For tests and benchmarks that must exercise the fan-out path on any
    /// host; production callers want [`CryptoPool::new`].
    pub fn with_forced_threads(crypto: SharedCrypto, threads: usize) -> Self {
        CryptoPool {
            crypto,
            threads: threads.max(1),
        }
    }

    /// The effective worker count (after clamping).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The crypto provider this pool verifies against.
    pub fn crypto(&self) -> &SharedCrypto {
        &self.crypto
    }

    /// True when `n` items would execute inline rather than fan out.
    fn runs_inline(&self, n: usize) -> bool {
        self.threads <= 1 || n < Self::SMALL_BATCH.max(2 * self.threads)
    }

    /// Chunk length for an `n`-item fan-out: every worker gets one
    /// contiguous chunk, fixed by arithmetic so outputs are independent of
    /// scheduling.
    fn chunk_len(&self, n: usize) -> usize {
        n.div_ceil(self.threads).max(1)
    }

    /// Verifies a batch of signatures, returning one verdict per item in
    /// input order.
    ///
    /// Verdict `i` is exactly `crypto.verify(items[i].0, items[i].1,
    /// items[i].2)` — the batch form exists to amortize the fan-out, not to
    /// change semantics.
    pub fn batch_verify(&self, items: &[VerifyItem<'_>]) -> Vec<bool> {
        let mut out = vec![false; items.len()];
        let crypto = self.crypto.as_ref();
        if self.runs_inline(items.len()) {
            for (slot, (node, msg, sig)) in out.iter_mut().zip(items) {
                *slot = crypto.verify(*node, msg, sig);
            }
            return out;
        }
        let chunk = self.chunk_len(items.len());
        std::thread::scope(|s| {
            for (ichunk, ochunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (slot, (node, msg, sig)) in ochunk.iter_mut().zip(ichunk) {
                        *slot = crypto.verify(*node, msg, sig);
                    }
                });
            }
        });
        out
    }

    /// Verifies a batch of signed headers (each proposer's signature over
    /// its header's canonical bytes) and seeds every header's
    /// [`SignedHeader::sig_cache`] with its verdict, so later
    /// [`verify_header_cached`](crate::verify_header_cached) calls on the
    /// same values are cache reads. Returns one verdict per header in
    /// input order.
    pub fn batch_verify_headers(&self, headers: &[&SignedHeader]) -> Vec<bool> {
        let pre_images: Vec<_> = headers.iter().map(|h| h.header.canonical_bytes()).collect();
        let items: Vec<VerifyItem<'_>> = headers
            .iter()
            .zip(&pre_images)
            .map(|(h, pre)| (h.proposer(), pre.as_slice(), &h.signature))
            .collect();
        let verdicts = self.batch_verify(&items);
        for (header, ok) in headers.iter().zip(&verdicts) {
            header.sig_cache().get_or_init(|| *ok);
        }
        verdicts
    }

    /// Hashes a batch of messages, returning one digest per message in
    /// input order (each equal to [`hash_bytes`] of that message).
    pub fn batch_hash(&self, msgs: &[&[u8]]) -> Vec<Hash> {
        let mut out = vec![Hash::default(); msgs.len()];
        if self.runs_inline(msgs.len()) {
            for (slot, msg) in out.iter_mut().zip(msgs) {
                *slot = hash_bytes(msg);
            }
            return out;
        }
        let chunk = self.chunk_len(msgs.len());
        std::thread::scope(|s| {
            for (ichunk, ochunk) in msgs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (slot, msg) in ochunk.iter_mut().zip(ichunk) {
                        *slot = hash_bytes(msg);
                    }
                });
            }
        });
        out
    }

    /// The merkle root of a transaction batch with the β leaf digests split
    /// across the pool's workers, folded to the root in place.
    ///
    /// Bit-for-bit equal to
    /// [`merkle_root_into`](crate::merkle::merkle_root_into) on the same
    /// batch (the fold is the shared `fold_root_in_place`, and leaf `i` is
    /// always `hash_transaction(&txs[i])` no matter which worker computed
    /// it); `scratch` is the caller-owned leaf buffer reused across blocks.
    pub fn merkle_root_par(&self, txs: &[Transaction], scratch: &mut Vec<Hash>) -> Hash {
        if txs.is_empty() {
            return Hash::default();
        }
        scratch.clear();
        scratch.resize(txs.len(), Hash::default());
        if self.runs_inline(txs.len()) {
            leaf_digests_into(txs, scratch);
        } else {
            let chunk = self.chunk_len(txs.len());
            std::thread::scope(|s| {
                for (tchunk, ochunk) in txs.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                    s.spawn(move || leaf_digests_into(tchunk, ochunk));
                }
            });
        }
        fold_root_in_place(scratch)
    }
}

impl std::fmt::Debug for CryptoPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CryptoPool({} threads, {})",
            self.threads,
            self.crypto.scheme()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{CryptoProvider, SimKeyStore};
    use crate::merkle::merkle_root_into;
    use fireledger_types::DetRng;

    fn pool(threads: usize) -> CryptoPool {
        CryptoPool::with_forced_threads(SimKeyStore::generate(4, 7).shared(), threads)
    }

    #[test]
    fn new_clamps_to_available_parallelism() {
        let crypto = SimKeyStore::generate(4, 7).shared();
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(CryptoPool::new(crypto.clone(), 4096).threads() <= cap);
        assert_eq!(CryptoPool::new(crypto.clone(), 0).threads(), 1);
        assert_eq!(CryptoPool::inline(crypto).threads(), 1);
    }

    #[test]
    fn batch_verify_matches_sequential_on_random_inputs() {
        // Property: for random messages, random signers, and randomly
        // corrupted signatures, the pooled verdicts equal one-at-a-time
        // verification — bit for bit, at every pool width.
        let mut rng = DetRng::seed_from_u64(0xC0FFEE);
        let crypto = SimKeyStore::generate(4, 7).shared();
        let mut msgs = Vec::new();
        let mut sigs = Vec::new();
        let mut signers = Vec::new();
        for i in 0..97u64 {
            let len = (rng.next_u64() % 96) as usize;
            let msg: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let signer = NodeId((rng.next_u64() % 5) as u32); // node 4 is unknown
            let mut sig = if signer.as_usize() < 4 {
                crypto.sign(signer, &msg)
            } else {
                Signature::from(vec![0u8; 32])
            };
            if i % 3 == 0 {
                // Corrupt a third of the signatures.
                let mut bytes = sig.as_bytes().to_vec();
                if let Some(b) = bytes.first_mut() {
                    *b ^= 0x01;
                }
                sig = Signature::from(bytes);
            }
            msgs.push(msg);
            sigs.push(sig);
            signers.push(signer);
        }
        let items: Vec<VerifyItem<'_>> = (0..msgs.len())
            .map(|i| (signers[i], msgs[i].as_slice(), &sigs[i]))
            .collect();
        let expected: Vec<bool> = items
            .iter()
            .map(|(n, m, s)| crypto.verify(*n, m, s))
            .collect();
        assert!(expected.iter().any(|v| *v) && expected.iter().any(|v| !*v));
        for threads in [1usize, 2, 3, 4, 7] {
            let p = CryptoPool::with_forced_threads(crypto.clone(), threads);
            assert_eq!(p.batch_verify(&items), expected, "{threads} threads");
        }
    }

    #[test]
    fn batch_hash_matches_sequential_on_random_inputs() {
        let mut rng = DetRng::seed_from_u64(42);
        let msgs: Vec<Vec<u8>> = (0..75)
            .map(|_| {
                let len = (rng.next_u64() % 200) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expected: Vec<Hash> = refs.iter().map(|m| hash_bytes(m)).collect();
        for threads in [1usize, 2, 4, 5] {
            assert_eq!(
                pool(threads).batch_hash(&refs),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn merkle_root_par_matches_sequential_for_every_shape() {
        // Every odd/even split shape plus random payload sizes: the
        // parallel root must be the sequential root.
        let mut rng = DetRng::seed_from_u64(9);
        for n in [0usize, 1, 2, 3, 15, 16, 17, 33, 64, 100, 257] {
            let txs: Vec<Transaction> = (0..n)
                .map(|i| {
                    let len = (rng.next_u64() % 64) as usize;
                    let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                    Transaction::new(1, i as u64, payload)
                })
                .collect();
            let mut seq_scratch = Vec::new();
            let expected = merkle_root_into(&txs, &mut seq_scratch);
            for threads in [1usize, 2, 4, 8] {
                let mut scratch = Vec::new();
                assert_eq!(
                    pool(threads).merkle_root_par(&txs, &mut scratch),
                    expected,
                    "{n} leaves, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_parallel_batches() {
        let p = pool(4);
        let mut scratch = Vec::new();
        let big: Vec<Transaction> = (0..80).map(|i| Transaction::zeroed(1, i, 64)).collect();
        let small: Vec<Transaction> = (0..5).map(|i| Transaction::zeroed(2, i, 16)).collect();
        let a = p.merkle_root_par(&big, &mut scratch);
        let b = p.merkle_root_par(&small, &mut scratch);
        assert_eq!(a, merkle_root_into(&big, &mut Vec::new()));
        assert_eq!(b, merkle_root_into(&small, &mut Vec::new()));
    }

    #[test]
    fn small_batches_run_inline() {
        let p = pool(8);
        assert!(p.runs_inline(CryptoPool::SMALL_BATCH - 1));
        assert!(!p.runs_inline(1000));
        // Inline pools never fan out, whatever the batch size.
        assert!(pool(1).runs_inline(1_000_000));
    }

    #[test]
    fn worker_panics_propagate_after_join() {
        // A panicking verification must not deadlock or silently corrupt
        // the batch: thread::scope re-raises after joining every worker.
        struct PanickyProvider;
        impl CryptoProvider for PanickyProvider {
            fn sign(&self, _: NodeId, _: &[u8]) -> Signature {
                Signature::empty()
            }
            fn verify(&self, node: NodeId, _: &[u8], _: &Signature) -> bool {
                assert!(node.0 != 13, "panicky node");
                true
            }
            fn cluster_size(&self) -> usize {
                64
            }
            fn cost_model(&self) -> crate::CostModel {
                crate::CostModel::free()
            }
            fn scheme(&self) -> &'static str {
                "panicky"
            }
        }
        let p = CryptoPool::with_forced_threads(Arc::new(PanickyProvider), 4);
        let sig = Signature::empty();
        let items: Vec<VerifyItem<'_>> = (0..64u32).map(|i| (NodeId(i), &[][..], &sig)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.batch_verify(&items);
        }));
        assert!(result.is_err(), "the worker panic must propagate");
        // The pool stays usable afterwards (no poisoned state).
        let ok_items: Vec<VerifyItem<'_>> = (0..64u32)
            .map(|i| (NodeId(i % 13), &[][..], &sig))
            .collect();
        assert_eq!(p.batch_verify(&ok_items), vec![true; 64]);
    }
}
