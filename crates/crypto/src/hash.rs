//! SHA-256 hashing helpers.
//!
//! Every block header carries the hash of its predecessor header and a digest
//! of its payload; these helpers compute those digests over the canonical byte
//! encodings defined in `fireledger-types`.

use crate::sha256::Sha256;
use fireledger_types::{BlockHeader, Hash, Transaction};

/// Hashes an arbitrary byte slice with SHA-256.
pub fn hash_bytes(bytes: &[u8]) -> Hash {
    Hash::from_bytes(Sha256::digest(bytes))
}

/// Hashes the concatenation of two digests (used for merkle inner nodes and
/// for chaining header digests).
pub fn hash_concat(a: &Hash, b: &Hash) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(a.as_bytes());
    hasher.update(b.as_bytes());
    Hash::from_bytes(hasher.finalize())
}

/// Hashes a block header's canonical encoding. This is the value the *next*
/// block stores in its `parent` field and the value the proposer signs.
///
/// Memoized through [`BlockHeader::hash_cache`]: a header is hashed at most
/// once per value, so hot paths that re-derive the same digest — the chain's
/// `tip_hash` on every vote check, parent links during validation — pay
/// SHA-256 once and a cache read thereafter. Cloned headers recompute (the
/// cache is reset by `Clone`; see `HashMemo`), which keeps the memo safe
/// under the clone-then-mutate idiom.
pub fn hash_header(header: &BlockHeader) -> Hash {
    header
        .hash_cache()
        .get_or_init(|| hash_bytes(&header.canonical_bytes()))
}

/// Hashes a single transaction (client id, sequence number and payload).
pub fn hash_transaction(tx: &Transaction) -> Hash {
    let mut hasher = Sha256::new();
    hasher.update(tx.client.to_be_bytes());
    hasher.update(tx.seq.to_be_bytes());
    hasher.update(&tx.payload);
    Hash::from_bytes(hasher.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{NodeId, Round, WorkerId, GENESIS_HASH};

    fn header(round: u64) -> BlockHeader {
        BlockHeader::new(
            Round(round),
            WorkerId(0),
            NodeId(0),
            GENESIS_HASH,
            GENESIS_HASH,
            0,
            0,
        )
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_bytes(b"fireledger"), hash_bytes(b"fireledger"));
        assert_ne!(hash_bytes(b"fireledger"), hash_bytes(b"fire ledger"));
    }

    #[test]
    fn known_sha256_vector() {
        // SHA-256("abc")
        let h = hash_bytes(b"abc");
        assert_eq!(
            h.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn header_hash_changes_with_round() {
        assert_ne!(hash_header(&header(0)), hash_header(&header(1)));
        assert_eq!(hash_header(&header(5)), hash_header(&header(5)));
    }

    #[test]
    fn concat_is_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_concat(&a, &b), hash_concat(&b, &a));
    }

    #[test]
    fn transaction_hash_covers_all_fields() {
        let t1 = Transaction::new(1, 1, vec![1, 2, 3]);
        let t2 = Transaction::new(1, 2, vec![1, 2, 3]);
        let t3 = Transaction::new(2, 1, vec![1, 2, 3]);
        let t4 = Transaction::new(1, 1, vec![1, 2, 4]);
        let h1 = hash_transaction(&t1);
        assert_ne!(h1, hash_transaction(&t2));
        assert_ne!(h1, hash_transaction(&t3));
        assert_ne!(h1, hash_transaction(&t4));
        assert_eq!(h1, hash_transaction(&t1.clone()));
    }
}
