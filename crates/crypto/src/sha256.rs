//! A self-contained SHA-256 implementation (FIPS 180-4).
//!
//! The workspace builds offline from the standard library alone, so the
//! reference hash function lives here instead of behind an external crate.
//! Correctness is pinned by the standard test vectors in this module and by
//! the known-answer test in [`crate::hash`].
//!
//! Two compression back-ends sit behind one dispatch:
//!
//! * a portable safe-Rust compressor with a rolling 16-word schedule and
//!   fully unrolled rounds (the working variables rotate by argument
//!   position instead of being shuffled through eight assignments per
//!   round);
//! * on `x86_64` CPUs that advertise the SHA extensions, the hardware
//!   `sha256rnds2`/`sha256msg1`/`sha256msg2` instruction sequence (the
//!   `ni` module below), detected once at runtime. This is the single biggest
//!   throughput lever in the workspace — every block body is merkle-hashed
//!   by every node, and the hardware rounds digest those leaves several
//!   times faster than any scalar schedule.
//!
//! Both back-ends compute the same function bit for bit (the differential
//! tests below drive every buffer-boundary shape through whichever back-end
//! is active and the portable one), so protocol results never depend on
//! which CPU ran them. `finalize` builds the padding block(s) directly
//! instead of feeding padding bytes one at a time through `update` — a real
//! cost for the 32–64-byte inputs the merkle fold digests thousands of
//! times per second.

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: impl AsRef<[u8]>) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        let mut data = data.as_ref();
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_run(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let full_len = data.len() - data.len() % 64;
        if full_len > 0 {
            // One back-end call for the whole contiguous run: the hardware
            // path keeps its state in registers across blocks.
            compress_run(&mut self.state, &data[..full_len]);
            data = &data[full_len..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    ///
    /// The padding (0x80, zeros, 64-bit big-endian bit length) is written
    /// into the final block(s) directly — every digest used to pay up to 63
    /// one-byte `update` calls here.
    pub fn finalize(self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        let mut state = self.state;
        let mut block = self.buf;
        block[self.buf_len] = 0x80;
        block[self.buf_len + 1..].fill(0);
        if self.buf_len >= 56 {
            // No room for the length: it goes into one extra all-padding
            // block.
            compress_run(&mut state, &block);
            block = [0u8; 64];
        }
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress_run(&mut state, &block);
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Compresses a contiguous run of 64-byte blocks into `state`, dispatching
/// to the hardware back-end when the CPU has one.
///
/// # Panics
/// Debug-asserts that `data` is a whole number of blocks.
fn compress_run(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if ni::available() {
        ni::compress_run(state, data);
        return;
    }
    for block in data.chunks_exact(64) {
        compress_portable(state, block.try_into().expect("64-byte chunk"));
    }
}

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// One compression of `block` into `state` — the portable back-end.
///
/// The eight working variables never move: each of the 16 unrolled rounds
/// per group names them in rotated argument order, so the per-round work is
/// exactly the FIPS 180-4 T1/T2 arithmetic with two assignments, and the
/// schedule lives in a 16-word ring refreshed once per group.
fn compress_portable(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
        *wi = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $k:expr, $w:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add($k)
                .wrapping_add($w);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }

    macro_rules! sixteen_rounds {
        ($base:expr) => {{
            round!(a, b, c, d, e, f, g, h, K[$base], w[0]);
            round!(h, a, b, c, d, e, f, g, K[$base + 1], w[1]);
            round!(g, h, a, b, c, d, e, f, K[$base + 2], w[2]);
            round!(f, g, h, a, b, c, d, e, K[$base + 3], w[3]);
            round!(e, f, g, h, a, b, c, d, K[$base + 4], w[4]);
            round!(d, e, f, g, h, a, b, c, K[$base + 5], w[5]);
            round!(c, d, e, f, g, h, a, b, K[$base + 6], w[6]);
            round!(b, c, d, e, f, g, h, a, K[$base + 7], w[7]);
            round!(a, b, c, d, e, f, g, h, K[$base + 8], w[8]);
            round!(h, a, b, c, d, e, f, g, K[$base + 9], w[9]);
            round!(g, h, a, b, c, d, e, f, K[$base + 10], w[10]);
            round!(f, g, h, a, b, c, d, e, K[$base + 11], w[11]);
            round!(e, f, g, h, a, b, c, d, K[$base + 12], w[12]);
            round!(d, e, f, g, h, a, b, c, K[$base + 13], w[13]);
            round!(c, d, e, f, g, h, a, b, K[$base + 14], w[14]);
            round!(b, c, d, e, f, g, h, a, K[$base + 15], w[15]);
        }};
    }

    macro_rules! refresh_schedule {
        () => {{
            for i in 0..16usize {
                w[i] = w[i]
                    .wrapping_add(small_sigma0(w[(i + 1) & 15]))
                    .wrapping_add(w[(i + 9) & 15])
                    .wrapping_add(small_sigma1(w[(i + 14) & 15]));
            }
        }};
    }

    sixteen_rounds!(0);
    refresh_schedule!();
    sixteen_rounds!(16);
    refresh_schedule!();
    sixteen_rounds!(32);
    refresh_schedule!();
    sixteen_rounds!(48);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// The x86-64 SHA-extensions back-end.
///
/// This module is the workspace's one island of `unsafe` outside the
/// benchmark allocator, and it is bounded to exactly two obligations:
///
/// 1. the `#[target_feature]` functions are only reachable through
///    [`available`], which gates them behind `is_x86_feature_detected!`;
/// 2. the raw 128-bit loads/stores read and write only within slices whose
///    bounds are checked in plain Rust immediately above them.
///
/// Equivalence with the portable compressor is enforced by the
/// differential tests at the bottom of this file, which run every
/// buffer-boundary shape through both paths.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod ni {
    use super::K;
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi32,
        _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
        _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };
    use std::sync::OnceLock;

    /// Whether this CPU supports the instruction sequence (`sha` plus the
    /// `ssse3`/`sse4.1` shuffles the packing needs), detected once.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Compresses a whole run of 64-byte blocks with the hardware rounds.
    pub fn compress_run(state: &mut [u32; 8], data: &[u8]) {
        debug_assert!(available());
        debug_assert_eq!(data.len() % 64, 0);
        // SAFETY: `available()` proved the sha/ssse3/sse4.1 target features
        // at runtime, which is the only precondition of the inner function.
        unsafe { compress_run_inner(state, data) }
    }

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn compress_run_inner(state: &mut [u32; 8], data: &[u8]) {
        // SAFETY (all intrinsics below): loads and stores go through
        // `_mm_loadu_si128`/`_mm_storeu_si128`, which have no alignment
        // requirement; every pointer is derived from an in-bounds index of
        // `state` (8 words = two 128-bit halves) or of a 64-byte block
        // sliced off `data` by the loop bounds.
        unsafe {
            let kv = |i: usize| {
                _mm_set_epi32(
                    K[i + 3] as i32,
                    K[i + 2] as i32,
                    K[i + 1] as i32,
                    K[i] as i32,
                )
            };
            // Byte shuffle turning each 32-bit lane big-endian.
            let byte_swap = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

            // Pack [a,b,c,d]/[e,f,g,h] into the ABEF/CDGH layout the
            // sha256rnds2 instruction expects.
            let tmp = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
            let mut state1 = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
            let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
            state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
            let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
            state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH

            for block in data.chunks_exact(64) {
                let abef_save = state0;
                let cdgh_save = state1;

                let load = |at: usize| {
                    _mm_shuffle_epi8(
                        _mm_loadu_si128(block.as_ptr().add(at).cast::<__m128i>()),
                        byte_swap,
                    )
                };

                macro_rules! quad_rounds {
                    ($msgv:expr) => {{
                        let m = $msgv;
                        state1 = _mm_sha256rnds2_epu32(state1, state0, m);
                        state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(m, 0x0E));
                    }};
                }

                // Rounds 0–15: straight message words.
                let mut msg0 = load(0);
                quad_rounds!(_mm_add_epi32(msg0, kv(0)));
                let mut msg1 = load(16);
                quad_rounds!(_mm_add_epi32(msg1, kv(4)));
                msg0 = _mm_sha256msg1_epu32(msg0, msg1);
                let mut msg2 = load(32);
                quad_rounds!(_mm_add_epi32(msg2, kv(8)));
                msg1 = _mm_sha256msg1_epu32(msg1, msg2);
                let mut msg3 = load(48);

                // Rounds 12–51: the rolling schedule. `cur` carries the
                // words for the current four rounds, `next` is extended with
                // sha256msg2, `prev` pre-mixed with sha256msg1.
                macro_rules! schedule_rounds {
                    ($cur:ident, $prev:ident, $next:ident, $k:expr) => {{
                        let m = _mm_add_epi32($cur, kv($k));
                        state1 = _mm_sha256rnds2_epu32(state1, state0, m);
                        let tmp = _mm_alignr_epi8($cur, $prev, 4);
                        $next = _mm_add_epi32($next, tmp);
                        $next = _mm_sha256msg2_epu32($next, $cur);
                        state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(m, 0x0E));
                        $prev = _mm_sha256msg1_epu32($prev, $cur);
                    }};
                }

                schedule_rounds!(msg3, msg2, msg0, 12);
                schedule_rounds!(msg0, msg3, msg1, 16);
                schedule_rounds!(msg1, msg0, msg2, 20);
                schedule_rounds!(msg2, msg1, msg3, 24);
                schedule_rounds!(msg3, msg2, msg0, 28);
                schedule_rounds!(msg0, msg3, msg1, 32);
                schedule_rounds!(msg1, msg0, msg2, 36);
                schedule_rounds!(msg2, msg1, msg3, 40);
                schedule_rounds!(msg3, msg2, msg0, 44);
                schedule_rounds!(msg0, msg3, msg1, 48);

                // Rounds 52–63: no further schedule extension needed beyond
                // msg2/msg3.
                {
                    let m = _mm_add_epi32(msg1, kv(52));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, m);
                    let tmp = _mm_alignr_epi8(msg1, msg0, 4);
                    msg2 = _mm_add_epi32(msg2, tmp);
                    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(m, 0x0E));
                }
                {
                    let m = _mm_add_epi32(msg2, kv(56));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, m);
                    let tmp = _mm_alignr_epi8(msg2, msg1, 4);
                    msg3 = _mm_add_epi32(msg3, tmp);
                    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(m, 0x0E));
                }
                quad_rounds!(_mm_add_epi32(msg3, kv(60)));

                state0 = _mm_add_epi32(state0, abef_save);
                state1 = _mm_add_epi32(state1, cdgh_save);
            }

            // Unpack ABEF/CDGH back to [a..d]/[e..h].
            let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
            state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
            let out0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
            let out1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
            _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), out0);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), out1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..255u8).cycle().take(300).collect();
        let expect = Sha256::digest(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn every_length_up_to_three_blocks_pads_correctly() {
        // The direct-padding finalize has two branches (length fits the
        // last block / needs an extra block); exercise both at every
        // boundary by checking a second, byte-at-a-time incremental
        // computation at each length.
        for len in 0usize..=192 {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 31 % 251) as u8).collect();
            let oneshot = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update([*b]);
            }
            assert_eq!(h.finalize(), oneshot, "length {len}");
        }
    }

    #[test]
    fn hardware_backend_matches_portable_on_random_runs() {
        // Differential test across back-ends: whatever `compress_run`
        // dispatches to must agree with `compress_portable` on every state
        // and block-run shape. (On CPUs without the SHA extensions the two
        // paths coincide and the test still pins `compress_run`'s
        // chunking.)
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for blocks in [1usize, 2, 3, 5, 8, 17] {
            let data: Vec<u8> = (0..blocks * 64).map(|_| next() as u8).collect();
            let mut state_a = H0;
            for word in &mut state_a {
                *word = word.wrapping_add(next() as u32);
            }
            let mut state_b = state_a;
            compress_run(&mut state_a, &data);
            for block in data.chunks_exact(64) {
                compress_portable(&mut state_b, block.try_into().unwrap());
            }
            assert_eq!(state_a, state_b, "divergence on a {blocks}-block run");
        }
    }
}
