//! Merkle trees over transaction batches.
//!
//! The paper hashes all of a block's transactions and signs the result
//! alongside the block header (§7.1). We use a binary merkle tree so the
//! payload digest also supports membership proofs — useful for light clients
//! and for the insurance-consortium example, and a common extension point for
//! permissioned ledgers.

use crate::hash::{hash_concat, hash_transaction};
use fireledger_types::{Block, Hash, Transaction};

/// Computes the leaf digest of every transaction into `out` (position `i`
/// gets `hash_transaction(&txs[i])`) — the chunkable unit the crypto pool
/// fans out across worker threads ([`crate::CryptoPool::merkle_root_par`]).
pub(crate) fn leaf_digests_into(txs: &[Transaction], out: &mut [Hash]) {
    debug_assert_eq!(txs.len(), out.len());
    for (tx, slot) in txs.iter().zip(out) {
        *slot = hash_transaction(tx);
    }
}

/// Folds a level's worth of digests to the merkle root in place, halving
/// the live prefix of `scratch` per level (promote-odd-leaf rule). Shared
/// by the sequential [`merkle_root_into`] and the pool's parallel leaf
/// path, so the two cannot drift apart.
///
/// # Panics
/// Panics if `scratch` is empty (callers handle the empty batch first).
pub(crate) fn fold_root_in_place(scratch: &mut Vec<Hash>) -> Hash {
    while scratch.len() > 1 {
        let mut write = 0;
        let mut read = 0;
        while read < scratch.len() {
            scratch[write] = if read + 1 < scratch.len() {
                hash_concat(&scratch[read], &scratch[read + 1])
            } else {
                // Promote the odd node unchanged.
                scratch[read]
            };
            write += 1;
            read += 2;
        }
        scratch.truncate(write);
    }
    scratch[0]
}

/// Computes the merkle root of a transaction batch.
///
/// The root of an empty batch is the all-zero hash, which matches the
/// `payload_hash` of an intentionally empty block.
///
/// This is the root-only fast path: unlike [`MerkleTree::build`] it keeps no
/// levels — the leaf digests are computed in one batched pass and folded to
/// the root in place, so the whole computation costs a single `Vec`
/// allocation (none at all via [`merkle_root_into`]). Both paths implement
/// the same promote-odd-leaf rule and produce identical roots (see the
/// `fast_root_matches_tree_root` test).
pub fn merkle_root(txs: &[Transaction]) -> Hash {
    let mut scratch = Vec::new();
    merkle_root_into(txs, &mut scratch)
}

/// [`merkle_root`] with a caller-owned scratch buffer for the leaf digests.
///
/// Proposers and validators hash one batch per block; feeding the same
/// scratch vector back every block makes steady-state payload hashing
/// allocation-free once the buffer reaches β entries.
pub fn merkle_root_into(txs: &[Transaction], scratch: &mut Vec<Hash>) -> Hash {
    if txs.is_empty() {
        return Hash::default();
    }
    // Batched leaf digests: one pass over the transactions.
    scratch.clear();
    scratch.resize(txs.len(), Hash::default());
    leaf_digests_into(txs, scratch);
    // Fold to the root in place, halving the live prefix per level.
    fold_root_in_place(scratch)
}

/// The merkle root of a block's body, computed once per [`Block`] value.
///
/// Memoized through [`Block::payload_root_cache`]: validating the same block
/// value repeatedly (FLO's per-node verify path checks the payload
/// commitment on every vote re-evaluation) hashes its β transactions once.
/// Callers that already know the root — e.g. a worker that stores verified
/// bodies by payload hash — can pre-seed the cache instead.
pub fn block_payload_root(block: &Block) -> Hash {
    block
        .payload_root_cache()
        .get_or_init(|| merkle_root(&block.txs))
}

/// A binary merkle tree with membership proofs.
///
/// Leaves are transaction hashes; odd leaves are promoted (not duplicated) so
/// the tree never commits to a transaction twice.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<Hash>>,
}

/// A merkle membership proof for a single leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level to the root, together with a flag that
    /// is true when the sibling is on the right.
    pub path: Vec<(Hash, bool)>,
}

impl MerkleTree {
    /// Builds a tree over the given transactions.
    pub fn build(txs: &[Transaction]) -> Self {
        if txs.is_empty() {
            return MerkleTree {
                levels: vec![vec![Hash::default()]],
            };
        }
        let mut levels = Vec::new();
        let leaves: Vec<Hash> = txs.iter().map(hash_transaction).collect();
        levels.push(leaves);
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_concat(&pair[0], &pair[1]));
                } else {
                    // Promote the odd node unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The merkle root.
    pub fn root(&self) -> Hash {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        if self.levels[0].len() == 1 && self.levels[0][0] == Hash::default() {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// True when the tree was built over an empty batch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces a membership proof for the leaf at `index`, or `None` if out
    /// of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            if sibling < level.len() {
                path.push((level[sibling], idx.is_multiple_of(2)));
            }
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }

    /// Verifies that `tx` is committed at `proof.index` under `root`.
    pub fn verify(root: &Hash, tx: &Transaction, proof: &MerkleProof) -> bool {
        let mut acc = hash_transaction(tx);
        for (sibling, sibling_is_right) in &proof.path {
            acc = if *sibling_is_right {
                hash_concat(&acc, sibling)
            } else {
                hash_concat(sibling, &acc)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::new(1, i as u64, vec![i as u8; 32]))
            .collect()
    }

    #[test]
    fn fast_root_matches_tree_root() {
        // The in-place fold and the full tree implement the same
        // promote-odd-leaf rule; their roots must agree for every shape.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100] {
            let batch = txs(n);
            assert_eq!(
                merkle_root(&batch),
                MerkleTree::build(&batch).root(),
                "divergence at {n} leaves"
            );
        }
    }

    #[test]
    fn scratch_buffer_is_reusable_across_batches() {
        let mut scratch = Vec::new();
        let a = merkle_root_into(&txs(7), &mut scratch);
        assert_eq!(a, merkle_root(&txs(7)));
        // A second, smaller batch through the same scratch.
        let b = merkle_root_into(&txs(3), &mut scratch);
        assert_eq!(b, merkle_root(&txs(3)));
        assert_ne!(a, b);
    }

    #[test]
    fn block_payload_root_memoizes_per_value() {
        use fireledger_types::{BlockHeader, NodeId, Round, WorkerId, GENESIS_HASH};
        let batch = txs(5);
        let header = BlockHeader::new(
            Round(0),
            WorkerId(0),
            NodeId(0),
            GENESIS_HASH,
            merkle_root(&batch),
            batch.len() as u32,
            0,
        );
        let block = Block::new(header, batch.clone());
        assert_eq!(block_payload_root(&block), merkle_root(&batch));
        assert_eq!(
            block.payload_root_cache().get(),
            Some(merkle_root(&batch)),
            "root must be cached after first computation"
        );
        // Pre-seeding wins over computation.
        let seeded = block.clone();
        seeded.payload_root_cache().get_or_init(|| Hash([7u8; 32]));
        assert_eq!(block_payload_root(&seeded), Hash([7u8; 32]));
    }

    #[test]
    fn empty_batch_has_zero_root() {
        assert_eq!(merkle_root(&[]), Hash::default());
        let t = MerkleTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let batch = txs(1);
        assert_eq!(merkle_root(&batch), hash_transaction(&batch[0]));
    }

    #[test]
    fn root_is_order_sensitive() {
        let a = txs(4);
        let mut b = a.clone();
        b.swap(0, 3);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn root_changes_with_any_tx() {
        let a = txs(8);
        let mut b = a.clone();
        b[5] = Transaction::new(99, 99, vec![0xff]);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 33] {
            let batch = txs(n);
            let tree = MerkleTree::build(&batch);
            let root = tree.root();
            for (i, tx) in batch.iter().enumerate() {
                let proof = tree.prove(i).expect("proof exists");
                assert!(
                    MerkleTree::verify(&root, tx, &proof),
                    "proof failed for leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_tx() {
        let batch = txs(7);
        let tree = MerkleTree::build(&batch);
        let proof = tree.prove(3).unwrap();
        let wrong = Transaction::new(42, 42, vec![1]);
        assert!(!MerkleTree::verify(&tree.root(), &wrong, &proof));
    }

    #[test]
    fn proof_fails_under_wrong_root() {
        let batch = txs(6);
        let tree = MerkleTree::build(&batch);
        let proof = tree.prove(2).unwrap();
        let other_root = merkle_root(&txs(5));
        assert!(!MerkleTree::verify(&other_root, &batch[2], &proof));
    }
}
