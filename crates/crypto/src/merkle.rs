//! Merkle trees over transaction batches.
//!
//! The paper hashes all of a block's transactions and signs the result
//! alongside the block header (§7.1). We use a binary merkle tree so the
//! payload digest also supports membership proofs — useful for light clients
//! and for the insurance-consortium example, and a common extension point for
//! permissioned ledgers.

use crate::hash::{hash_concat, hash_transaction};
use fireledger_types::{Hash, Transaction};

/// Computes the merkle root of a transaction batch.
///
/// The root of an empty batch is the all-zero hash, which matches the
/// `payload_hash` of an intentionally empty block.
pub fn merkle_root(txs: &[Transaction]) -> Hash {
    MerkleTree::build(txs).root()
}

/// A binary merkle tree with membership proofs.
///
/// Leaves are transaction hashes; odd leaves are promoted (not duplicated) so
/// the tree never commits to a transaction twice.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<Hash>>,
}

/// A merkle membership proof for a single leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level to the root, together with a flag that
    /// is true when the sibling is on the right.
    pub path: Vec<(Hash, bool)>,
}

impl MerkleTree {
    /// Builds a tree over the given transactions.
    pub fn build(txs: &[Transaction]) -> Self {
        if txs.is_empty() {
            return MerkleTree {
                levels: vec![vec![Hash::default()]],
            };
        }
        let mut levels = Vec::new();
        let leaves: Vec<Hash> = txs.iter().map(hash_transaction).collect();
        levels.push(leaves);
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_concat(&pair[0], &pair[1]));
                } else {
                    // Promote the odd node unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The merkle root.
    pub fn root(&self) -> Hash {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        if self.levels[0].len() == 1 && self.levels[0][0] == Hash::default() {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// True when the tree was built over an empty batch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces a membership proof for the leaf at `index`, or `None` if out
    /// of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            if sibling < level.len() {
                path.push((level[sibling], idx.is_multiple_of(2)));
            }
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }

    /// Verifies that `tx` is committed at `proof.index` under `root`.
    pub fn verify(root: &Hash, tx: &Transaction, proof: &MerkleProof) -> bool {
        let mut acc = hash_transaction(tx);
        for (sibling, sibling_is_right) in &proof.path {
            acc = if *sibling_is_right {
                hash_concat(&acc, sibling)
            } else {
                hash_concat(sibling, &acc)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::new(1, i as u64, vec![i as u8; 32]))
            .collect()
    }

    #[test]
    fn empty_batch_has_zero_root() {
        assert_eq!(merkle_root(&[]), Hash::default());
        let t = MerkleTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let batch = txs(1);
        assert_eq!(merkle_root(&batch), hash_transaction(&batch[0]));
    }

    #[test]
    fn root_is_order_sensitive() {
        let a = txs(4);
        let mut b = a.clone();
        b.swap(0, 3);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn root_changes_with_any_tx() {
        let a = txs(8);
        let mut b = a.clone();
        b[5] = Transaction::new(99, 99, vec![0xff]);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 33] {
            let batch = txs(n);
            let tree = MerkleTree::build(&batch);
            let root = tree.root();
            for (i, tx) in batch.iter().enumerate() {
                let proof = tree.prove(i).expect("proof exists");
                assert!(
                    MerkleTree::verify(&root, tx, &proof),
                    "proof failed for leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_tx() {
        let batch = txs(7);
        let tree = MerkleTree::build(&batch);
        let proof = tree.prove(3).unwrap();
        let wrong = Transaction::new(42, 42, vec![1]);
        assert!(!MerkleTree::verify(&tree.root(), &wrong, &proof));
    }

    #[test]
    fn proof_fails_under_wrong_root() {
        let batch = txs(6);
        let tree = MerkleTree::build(&batch);
        let proof = tree.prove(2).unwrap();
        let other_root = merkle_root(&txs(5));
        assert!(!MerkleTree::verify(&other_root, &batch[2], &proof));
    }
}
