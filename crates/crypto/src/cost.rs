//! CPU cost model for cryptographic operations.
//!
//! The paper's signature-rate experiment (Figure 5) establishes that the time
//! to sign a block is `t_sign = β · σ · t_hash + C` where `C` is the constant
//! ECDSA cost and `t_hash` the per-byte hashing cost, and uses the measured
//! rate as an upper bound on throughput (`tps ≤ sps · β`). The discrete-event
//! simulator charges exactly this model to each node's (multi-core) CPU, so
//! protocols that sign more (HotStuff: every replica signs every block) pay
//! proportionally more simulated CPU time than protocols that sign less
//! (FireLedger: only the proposer signs).
//!
//! Two presets reproduce the paper's machine classes, and
//! [`CostModel::calibrate`] measures the actual cost of this crate's ECDSA /
//! SHA-256 implementations on the local machine for the real-time runtime.

use std::time::{Duration, Instant};

/// Per-operation CPU costs of the cryptographic primitives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of one ECDSA signature over an already-hashed message (the
    /// constant `C` of §7.1).
    pub sign: Duration,
    /// Cost of one ECDSA signature verification.
    pub verify: Duration,
    /// Hashing cost per byte (`t_hash` of §7.1).
    pub hash_per_byte: Duration,
    /// Number of vCPUs available to one node.
    pub cores: usize,
}

impl CostModel {
    /// Cost model for the paper's default evaluation machines: AWS m5.xlarge
    /// (4 vCPUs of Xeon Platinum 8175) running a Java implementation with
    /// BouncyCastle-class ECDSA performance. Derived from Figure 5: with
    /// β = 10, σ = 512 the per-core signature rate is ≈ 1.1 k/s (C ≈ 0.9 ms)
    /// and large blocks are dominated by hashing at ≈ 160 MB/s per core.
    pub fn m5_xlarge() -> Self {
        CostModel {
            sign: Duration::from_micros(900),
            verify: Duration::from_micros(1100),
            hash_per_byte: Duration::from_nanos(6),
            cores: 4,
        }
    }

    /// Cost model for the comparison machines of §7.6: AWS c5.4xlarge
    /// (16 vCPUs, higher clocked), roughly 1.4× faster per core.
    pub fn c5_4xlarge() -> Self {
        CostModel {
            sign: Duration::from_micros(650),
            verify: Duration::from_micros(800),
            hash_per_byte: Duration::from_nanos(4),
            cores: 16,
        }
    }

    /// A cost model in which crypto is free — useful for isolating network
    /// effects in ablation experiments.
    pub fn free() -> Self {
        CostModel {
            sign: Duration::ZERO,
            verify: Duration::ZERO,
            hash_per_byte: Duration::ZERO,
            cores: 1,
        }
    }

    /// Overrides the number of cores.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Measures the real cost of this workspace's signature
    /// ([`crate::LamportKeyStore`]) and SHA-256 implementations on the local
    /// machine. `iters` controls how many operations are timed; a few hundred
    /// gives a stable estimate in well under a second.
    pub fn calibrate(iters: usize, cores: usize) -> Self {
        use crate::keys::{CryptoProvider, LamportKeyStore};
        use crate::sha256::Sha256;
        use fireledger_types::NodeId;

        let iters = iters.max(8);
        let store = LamportKeyStore::generate(1, 0xF1E7);
        let msg = [0xabu8; 64];

        let start = Instant::now();
        let mut last = None;
        for _ in 0..iters {
            last = Some(store.sign(NodeId(0), &msg));
        }
        let sign = start.elapsed() / iters as u32;

        let sig = last.unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            let _ = store.verify(NodeId(0), &msg, &sig);
        }
        let verify = start.elapsed() / iters as u32;

        let block = vec![0u8; 64 * 1024];
        let hash_iters = iters.max(16);
        let start = Instant::now();
        for _ in 0..hash_iters {
            let _ = Sha256::digest(&block);
        }
        let per_block = start.elapsed() / hash_iters as u32;
        let hash_per_byte =
            Duration::from_nanos((per_block.as_nanos() / block.len() as u128).max(1) as u64);

        CostModel {
            sign,
            verify,
            hash_per_byte,
            cores: cores.max(1),
        }
    }

    /// Time to hash `bytes` bytes.
    pub fn hash_time(&self, bytes: u64) -> Duration {
        self.hash_per_byte
            .saturating_mul(bytes.min(u32::MAX as u64) as u32)
    }

    /// Time to sign a block of `payload_bytes` (hash the payload, then one
    /// ECDSA signature): `t_sign = β·σ·t_hash + C`.
    pub fn block_sign_time(&self, payload_bytes: u64) -> Duration {
        self.hash_time(payload_bytes) + self.sign
    }

    /// Time to verify a block signature over `payload_bytes`.
    pub fn block_verify_time(&self, payload_bytes: u64) -> Duration {
        self.hash_time(payload_bytes) + self.verify
    }

    /// The single-core signature rate (signatures per second) for blocks of
    /// `payload_bytes` — the quantity plotted in Figure 5 (per worker).
    pub fn signature_rate(&self, payload_bytes: u64) -> f64 {
        let t = self.block_sign_time(payload_bytes);
        if t.is_zero() {
            f64::INFINITY
        } else {
            1.0 / t.as_secs_f64()
        }
    }

    /// Total CPU time for a [`fireledger_types::runtime::CpuCharge`]-shaped
    /// workload: `signs` signatures, `verifies` verifications and
    /// `hashed_bytes` bytes of hashing.
    pub fn charge_time(&self, signs: u32, verifies: u32, hashed_bytes: u64) -> Duration {
        self.sign.saturating_mul(signs)
            + self.verify.saturating_mul(verifies)
            + self.hash_time(hashed_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::m5_xlarge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let m5 = CostModel::m5_xlarge();
        let c5 = CostModel::c5_4xlarge();
        assert!(c5.sign < m5.sign);
        assert!(c5.cores > m5.cores);
        assert_eq!(CostModel::free().sign, Duration::ZERO);
    }

    #[test]
    fn block_sign_time_grows_linearly_with_payload() {
        let m = CostModel::m5_xlarge();
        let t_small = m.block_sign_time(10 * 512);
        let t_big = m.block_sign_time(1000 * 4096);
        assert!(t_big > t_small);
        // β·σ·t_hash term: 4 MB at 6 ns/B ≈ 24.5 ms.
        assert!(t_big > Duration::from_millis(20));
        assert!(t_small < Duration::from_millis(2));
    }

    #[test]
    fn signature_rate_is_inverse_of_sign_time() {
        let m = CostModel::m5_xlarge();
        let rate = m.signature_rate(10 * 512);
        let t = m.block_sign_time(10 * 512).as_secs_f64();
        assert!((rate * t - 1.0).abs() < 1e-9);
        assert!(CostModel::free().signature_rate(1).is_infinite());
    }

    #[test]
    fn rate_ordering_matches_figure5() {
        // Smaller blocks → higher signature rate, for every machine class.
        for m in [CostModel::m5_xlarge(), CostModel::c5_4xlarge()] {
            let r_small = m.signature_rate(10 * 512);
            let r_mid = m.signature_rate(100 * 1024);
            let r_big = m.signature_rate(1000 * 4096);
            assert!(r_small > r_mid && r_mid > r_big);
        }
    }

    #[test]
    fn charge_time_combines_components() {
        let m = CostModel::m5_xlarge();
        let t = m.charge_time(2, 3, 1000);
        assert_eq!(t, m.sign * 2 + m.verify * 3 + m.hash_time(1000));
    }

    #[test]
    fn with_cores_clamps_to_one() {
        assert_eq!(CostModel::m5_xlarge().with_cores(0).cores, 1);
        assert_eq!(CostModel::m5_xlarge().with_cores(8).cores, 8);
    }

    #[test]
    fn calibration_produces_nonzero_costs() {
        let m = CostModel::calibrate(8, 4);
        assert!(m.sign > Duration::ZERO);
        assert!(m.verify > Duration::ZERO);
        assert!(m.hash_per_byte > Duration::ZERO);
        assert_eq!(m.cores, 4);
    }
}
