//! A minimal micro-benchmark harness.
//!
//! The workspace builds offline without external crates, so the `benches/`
//! targets use this tiny timer instead of criterion: each benchmark runs a
//! short calibration pass to pick an iteration count, then reports the mean
//! wall-clock time per iteration. The output format is one stable line per
//! benchmark, greppable by `^bench:`.

use std::time::{Duration, Instant};

/// Result of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations timed.
    pub iters: u64,
    /// Mean time per iteration.
    pub per_iter: Duration,
}

/// Times `f`, choosing an iteration count so the measured pass takes roughly
/// `target`. Returns and prints the result.
pub fn bench_with_target<T>(name: &str, target: Duration, mut f: impl FnMut() -> T) -> BenchResult {
    // Calibration: run once, then scale to the target duration.
    let start = Instant::now();
    let _ = f();
    let once = start.elapsed().max(Duration::from_nanos(50));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let start = Instant::now();
    for _ in 0..iters {
        let _ = f();
    }
    let total = start.elapsed();
    let per_iter = total / iters as u32;
    let result = BenchResult {
        name: name.to_string(),
        iters,
        per_iter,
    };
    println!(
        "bench: {name:<44} {:>12.3} µs/iter   ({iters} iters)",
        per_iter.as_secs_f64() * 1e6
    );
    result
}

/// Times `f` with the default 200 ms target pass.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> BenchResult {
    bench_with_target(name, Duration::from_millis(200), f)
}

/// Prints a section header.
pub fn section(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_timings() {
        let r = bench_with_target("spin", Duration::from_millis(5), || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(r.iters >= 1);
        assert!(r.per_iter > Duration::ZERO);
    }
}
