//! A minimal micro-benchmark harness.
//!
//! The workspace builds offline without external crates, so the `benches/`
//! targets use this tiny timer instead of criterion. Each benchmark:
//!
//! 1. runs a **warm-up** pass (~10% of the target duration) so caches,
//!    branch predictors and lazy allocations settle before anything is
//!    timed;
//! 2. calibrates an iteration count from the warm-up so one measured pass
//!    takes roughly the target duration;
//! 3. times **k repetitions** of that pass and reports the *minimum* mean —
//!    the standard minimum-of-k estimator, which discards scheduler noise
//!    and interrupts (they only ever make a pass slower, never faster).
//!
//! The output format is one stable line per benchmark, greppable by
//! `^bench:`; [`BenchResult::to_json_line`] provides the machine-readable
//! form, greppable by `^bench_json:`.

use std::time::{Duration, Instant};

/// Repetitions of the measured pass; the reported time is the fastest.
pub const DEFAULT_REPS: u32 = 3;

/// Result of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per measured repetition.
    pub iters: u64,
    /// Repetitions measured (the reported time is their minimum).
    pub reps: u32,
    /// Mean time per iteration within the fastest repetition.
    pub per_iter: Duration,
}

impl BenchResult {
    /// The result as one machine-readable JSON line (`bench_json:` prefix
    /// excluded — the caller decides the framing).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"reps\":{},\"ns_per_iter\":{}}}",
            self.name.replace('\\', "\\\\").replace('"', "\\\""),
            self.iters,
            self.reps,
            self.per_iter.as_nanos(),
        )
    }
}

/// Times `f`: warm-up, calibration, then [`DEFAULT_REPS`] measured passes of
/// roughly `target` each, reporting the fastest pass's mean per-iteration
/// time. Returns and prints the result.
pub fn bench_with_target<T>(name: &str, target: Duration, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up for ~10% of the target, counting iterations as calibration.
    let warmup_budget = (target / 10).max(Duration::from_micros(100));
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while warmup_start.elapsed() < warmup_budget {
        let _ = std::hint::black_box(f());
        warmup_iters += 1;
    }
    let per_iter_estimate =
        (warmup_start.elapsed() / warmup_iters.max(1) as u32).max(Duration::from_nanos(50));
    let iters =
        (target.as_nanos() / per_iter_estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    // Min-of-k: a repetition can only be slowed down by external noise, so
    // the fastest repetition is the best estimate of the true cost.
    let mut best = Duration::MAX;
    for _ in 0..DEFAULT_REPS {
        let start = Instant::now();
        for _ in 0..iters {
            let _ = std::hint::black_box(f());
        }
        best = best.min(start.elapsed());
    }
    // 1 ns floor: a fully optimized-away body can measure below the clock's
    // per-iteration resolution, and "0 ns" rows would break rate math
    // downstream.
    let per_iter = (best / iters as u32).max(Duration::from_nanos(1));
    let result = BenchResult {
        name: name.to_string(),
        iters,
        reps: DEFAULT_REPS,
        per_iter,
    };
    println!(
        "bench: {name:<44} {:>12.3} µs/iter   ({iters} iters, min of {})",
        per_iter.as_secs_f64() * 1e6,
        DEFAULT_REPS,
    );
    println!("bench_json: {}", result.to_json_line());
    result
}

/// Times `f` with the default 200 ms target pass.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> BenchResult {
    bench_with_target(name, Duration::from_millis(200), f)
}

/// Prints a section header.
pub fn section(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_timings() {
        let r = bench_with_target("spin", Duration::from_millis(5), || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(r.iters >= 1);
        assert!(r.reps == DEFAULT_REPS);
        assert!(r.per_iter > Duration::ZERO);
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = BenchResult {
            name: "merkle \"quoted\"".into(),
            iters: 100,
            reps: 3,
            per_iter: Duration::from_nanos(1234),
        };
        let json = r.to_json_line();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ns_per_iter\":1234"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
