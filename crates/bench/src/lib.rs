//! # fireledger-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FireLedger paper's evaluation (§7). Each figure/table has its own binary in
//! `src/bin/` (see `DESIGN.md` for the index); this library holds the shared
//! machinery: building clusters, running them on the discrete-event
//! simulator under a given network/CPU model, and emitting result rows both
//! as human-readable tables and as JSON (one object per row on stdout lines
//! prefixed with `JSON:`), which `EXPERIMENTS.md` is produced from.
//!
//! Absolute numbers depend on the simulator's calibration, not on the
//! authors' AWS testbed, so the quantities to compare against the paper are
//! the *shapes*: how throughput scales with n, ω, σ, β, who wins between
//! FLO, HotStuff and BFT-SMaRt, and where the trade-offs cross over.

#![forbid(unsafe_code)]

use fireledger::prelude::*;
use fireledger::{ClusterNode, EquivocatingNode};
use fireledger_baselines::{BftSmartNode, HotStuffNode};
use fireledger_crypto::{CostModel, SharedCrypto, SimKeyStore};
use fireledger_sim::adversary::CrashSchedule;
use fireledger_sim::{Metrics, RunSummary, SimConfig, SimTime, Simulation};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Which protocol a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum System {
    /// FLO / FireLedger.
    Flo,
    /// Chained HotStuff baseline.
    HotStuff,
    /// BFT-SMaRt-style ordering baseline.
    BftSmart,
}

/// One experiment configuration (a point of a parameter sweep).
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub system: System,
    /// Cluster size n.
    pub n: usize,
    /// FLO workers ω (ignored by the baselines).
    pub workers: usize,
    /// Batch size β.
    pub batch: usize,
    /// Transaction size σ in bytes.
    pub tx_size: usize,
    /// Human-readable network label ("single-dc" / "geo" / ...).
    pub network: String,
    /// Simulated run length in milliseconds.
    pub duration_ms: u64,
    /// Number of crashed nodes (crash at t = 0 measurement starts after).
    pub crashed: usize,
    /// Number of equivocating Byzantine nodes.
    pub byzantine: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A FLO configuration with the paper's defaults.
    pub fn flo(n: usize, workers: usize, batch: usize, tx_size: usize) -> Self {
        ExperimentConfig {
            system: System::Flo,
            n,
            workers,
            batch,
            tx_size,
            network: "single-dc".into(),
            duration_ms: 2_000,
            crashed: 0,
            byzantine: 0,
            seed: 1,
        }
    }

    /// Switches the run to the geo-distributed network model.
    pub fn geo(mut self) -> Self {
        self.network = "geo".into();
        self.duration_ms = self.duration_ms.max(5_000);
        self
    }

    /// Sets the simulated duration.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration_ms = d.as_millis() as u64;
        self
    }

    /// Uses a different protocol.
    pub fn system(mut self, system: System) -> Self {
        self.system = system;
        self
    }

    /// Crashes the last `crashed` nodes at the start of the measurement.
    pub fn with_crashes(mut self, crashed: usize) -> Self {
        self.crashed = crashed;
        self
    }

    /// Makes the last `byzantine` nodes equivocate on every block they propose.
    pub fn with_byzantine(mut self, byzantine: usize) -> Self {
        self.byzantine = byzantine;
        self
    }

    fn protocol_params(&self) -> ProtocolParams {
        let base_timeout = if self.network == "geo" {
            Duration::from_millis(400)
        } else {
            Duration::from_millis(20)
        };
        ProtocolParams::new(self.n)
            .with_workers(self.workers)
            .with_batch_size(self.batch)
            .with_tx_size(self.tx_size)
            .with_base_timeout(base_timeout)
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = if self.network == "geo" {
            SimConfig::geo_distributed()
        } else {
            SimConfig::single_dc()
        };
        cfg.seed = self.seed;
        cfg
    }

    /// Overrides the CPU model (e.g. `CostModel::c5_4xlarge()` for the §7.6
    /// comparison).
    pub fn run_with_cost(&self, cost: CostModel) -> ExperimentResult {
        let mut sim_cfg = self.sim_config();
        sim_cfg.cost = cost;
        self.run_on(sim_cfg)
    }

    /// Runs the experiment with the default machine model (m5.xlarge).
    pub fn run(&self) -> ExperimentResult {
        self.run_on(self.sim_config())
    }

    fn run_on(&self, sim_cfg: SimConfig) -> ExperimentResult {
        let duration = Duration::from_millis(self.duration_ms);
        match self.system {
            System::Flo => self.run_flo(sim_cfg, duration),
            System::HotStuff => self.run_baseline(sim_cfg, duration, true),
            System::BftSmart => self.run_baseline(sim_cfg, duration, false),
        }
    }

    fn correct_nodes(&self) -> Vec<NodeId> {
        let faulty = self.crashed + self.byzantine;
        (0..(self.n - faulty) as u32).map(NodeId).collect()
    }

    fn finish<P>(&self, mut sim: Simulation<P>, warmup: Duration) -> ExperimentResult
    where
        P: fireledger_types::Protocol,
        P::Msg: fireledger_types::WireSize,
    {
        sim.metrics_mut()
            .set_window_start(SimTime::ZERO + warmup);
        let correct = self.correct_nodes();
        let summary = sim.summary_for(&correct);
        let phase = sim.metrics().phase_breakdown();
        let cdf = sim.metrics().latency_cdf(20);
        ExperimentResult {
            config: self.clone(),
            summary,
            phase_breakdown: phase,
            latency_cdf: cdf,
        }
    }

    fn run_flo(&self, sim_cfg: SimConfig, duration: Duration) -> ExperimentResult {
        let params = self.protocol_params();
        let honest = self.n - self.byzantine;
        let crypto: SharedCrypto = SimKeyStore::generate(self.n, self.seed).shared();
        let nodes: Vec<ClusterNode> = (0..self.n)
            .map(|i| {
                let flo = FloNode::new(
                    NodeId(i as u32),
                    params.clone(),
                    crypto.clone(),
                    Arc::new(fireledger::AcceptAll),
                );
                if i >= honest {
                    ClusterNode::Equivocating(EquivocatingNode::new(flo, crypto.clone()))
                } else {
                    ClusterNode::Honest(flo)
                }
            })
            .collect();
        let mut sim = if self.crashed > 0 {
            let adv = CrashSchedule::crash_last_f(self.n, self.crashed, SimTime::ZERO);
            Simulation::with_adversary(sim_cfg, nodes, Box::new(adv))
        } else {
            Simulation::new(sim_cfg, nodes)
        };
        let warmup = duration / 10;
        sim.run_for(duration);
        self.finish(sim, warmup)
    }

    fn run_baseline(
        &self,
        sim_cfg: SimConfig,
        duration: Duration,
        hotstuff: bool,
    ) -> ExperimentResult {
        let params = self.protocol_params();
        let crypto: SharedCrypto = SimKeyStore::generate(self.n, self.seed).shared();
        let warmup = duration / 10;
        if hotstuff {
            let nodes: Vec<HotStuffNode> = (0..self.n)
                .map(|i| HotStuffNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
                .collect();
            let mut sim = Simulation::new(sim_cfg, nodes);
            sim.run_for(duration);
            self.finish(sim, warmup)
        } else {
            let nodes: Vec<BftSmartNode> = (0..self.n)
                .map(|i| BftSmartNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
                .collect();
            let mut sim = Simulation::new(sim_cfg, nodes);
            sim.run_for(duration);
            self.finish(sim, warmup)
        }
    }
}

/// The result of one experiment run.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Headline rates and latencies.
    pub summary: RunSummary,
    /// Relative time spent in the A→B→C→D→E phases (Figure 9).
    pub phase_breakdown: [f64; 4],
    /// Latency CDF points (Figures 8 and 15).
    pub latency_cdf: Vec<(f64, f64)>,
}

impl ExperimentResult {
    /// Prints a human-readable row plus a machine-readable `JSON:` line.
    pub fn emit(&self, label: &str) {
        println!(
            "{label:<28} n={:<3} ω={:<2} β={:<5} σ={:<5} net={:<9} | tps={:>10.0} bps={:>8.1} lat(avg)={:>7.3}s p95={:>7.3}s rps={:>5.2} msgs={:>8}",
            self.config.n,
            self.config.workers,
            self.config.batch,
            self.config.tx_size,
            self.config.network,
            self.summary.tps,
            self.summary.bps,
            self.summary.avg_latency_secs,
            self.summary.p95_latency_secs,
            self.summary.recoveries_per_sec,
            self.summary.msgs_sent,
        );
        if let Ok(json) = serde_json::to_string(self) {
            println!("JSON: {json}");
        }
    }
}

/// Whether the harness should run the full (slow) parameter grids.
/// Controlled by the `FIRELEDGER_BENCH_FULL` environment variable; the default
/// is a quick grid so `cargo run` on every binary finishes in minutes.
pub fn full_mode() -> bool {
    std::env::var("FIRELEDGER_BENCH_FULL").is_ok_and(|v| v != "0")
}

/// The worker counts to sweep (the paper sweeps 1..10; quick mode uses a
/// representative subset).
pub fn worker_sweep() -> Vec<usize> {
    if full_mode() {
        (1..=10).collect()
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The paper's cluster sizes.
pub fn cluster_sizes() -> Vec<usize> {
    vec![4, 7, 10]
}

/// The paper's batch sizes β.
pub fn batch_sizes() -> Vec<usize> {
    vec![10, 100, 1000]
}

/// The paper's transaction sizes σ.
pub fn tx_sizes() -> Vec<usize> {
    vec![512, 1024, 4096]
}

/// Prints the standard experiment banner.
pub fn banner(name: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("FireLedger reproduction — {name}");
    println!("Paper reference: {paper_ref}");
    println!("Mode: {}", if full_mode() { "FULL" } else { "quick (set FIRELEDGER_BENCH_FULL=1 for the full grid)" });
    println!("==============================================================");
}

/// Extracts per-node message/signature counters — used by the Table 1 cost
/// accounting.
pub fn cost_counters(metrics: &Metrics) -> (u64, u64, u64) {
    let mut msgs = 0;
    let mut sigs = 0;
    let mut verifies = 0;
    for c in metrics.node_counters() {
        msgs += c.msgs_sent;
        sigs += c.signatures;
        verifies += c.verifications;
    }
    (msgs, sigs, verifies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flo_run_produces_throughput() {
        let result = ExperimentConfig::flo(4, 1, 10, 512)
            .duration(Duration::from_millis(300))
            .run();
        assert!(result.summary.tps > 0.0, "tps = {}", result.summary.tps);
        assert!(result.summary.bps > 0.0);
    }

    #[test]
    fn baseline_runs_produce_throughput() {
        for system in [System::HotStuff, System::BftSmart] {
            let result = ExperimentConfig::flo(4, 1, 10, 512)
                .system(system)
                .duration(Duration::from_millis(300))
                .run();
            assert!(
                result.summary.tps > 0.0,
                "{system:?} produced no throughput"
            );
        }
    }

    #[test]
    fn crash_run_restricts_to_correct_nodes() {
        let cfg = ExperimentConfig::flo(4, 1, 10, 512)
            .with_crashes(1)
            .duration(Duration::from_millis(400));
        let result = cfg.run();
        assert_eq!(cfg.correct_nodes().len(), 3);
        assert!(result.summary.tps > 0.0);
    }

    #[test]
    fn byzantine_run_reports_recoveries() {
        let result = ExperimentConfig::flo(4, 1, 10, 512)
            .with_byzantine(1)
            .duration(Duration::from_millis(600))
            .run();
        // The equivocating proposer must trigger at least one recovery.
        assert!(result.summary.recoveries_per_sec >= 0.0);
        assert!(result.summary.tps > 0.0);
    }

    #[test]
    fn sweep_helpers_match_paper_table2() {
        assert_eq!(cluster_sizes(), vec![4, 7, 10]);
        assert_eq!(batch_sizes(), vec![10, 100, 1000]);
        assert_eq!(tx_sizes(), vec![512, 1024, 4096]);
        assert!(!worker_sweep().is_empty());
    }
}
