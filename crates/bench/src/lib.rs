//! # fireledger-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FireLedger paper's evaluation (§7). Each figure/table has its own binary
//! in `src/bin/`; this library holds the shared machinery, which is a thin
//! layer over `fireledger-runtime`: an [`ExperimentConfig`] is translated
//! into a `ClusterBuilder` + `Scenario` pair and executed on the
//! [`Simulator`] runtime (or, for the matrix binary, on [`Threads`] too).
//! Results are emitted both as human-readable rows and as machine-readable
//! `JSON:` lines built from the unified [`RunReport`].
//!
//! Absolute numbers depend on the simulator's calibration, not on the
//! authors' AWS testbed, so the quantities to compare against the paper are
//! the *shapes*: how throughput scales with n, ω, σ, β, who wins between
//! FLO, HotStuff and BFT-SMaRt, and where the trade-offs cross over.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod quickbench;

pub use fireledger_runtime::prelude::*;

use fireledger_crypto::CostModel;
use std::time::Duration;

/// Which protocol a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// FLO / FireLedger.
    Flo,
    /// A single WRB/OBBC FireLedger instance (no FLO merge).
    Wrb,
    /// Classical PBFT.
    Pbft,
    /// Chained HotStuff baseline.
    HotStuff,
    /// BFT-SMaRt-style ordering baseline.
    BftSmart,
}

impl System {
    /// Every protocol of the matrix.
    pub const ALL: [System; 5] = [
        System::Flo,
        System::Wrb,
        System::Pbft,
        System::HotStuff,
        System::BftSmart,
    ];
}

/// One experiment configuration (a point of a parameter sweep).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub system: System,
    /// Cluster size n.
    pub n: usize,
    /// FLO workers ω (ignored by the single-instance protocols).
    pub workers: usize,
    /// Batch size β.
    pub batch: usize,
    /// Transaction size σ in bytes.
    pub tx_size: usize,
    /// Human-readable network label ("single-dc" / "geo" / "ideal").
    pub network: String,
    /// Simulated run length in milliseconds.
    pub duration_ms: u64,
    /// Number of crashed nodes (crash at t = 0; measurement starts after).
    pub crashed: usize,
    /// Number of equivocating Byzantine nodes.
    pub byzantine: usize,
    /// RNG seed.
    pub seed: u64,
    /// Base-timeout override in milliseconds; `None` derives the timeout
    /// from the topology (the sweep binaries' behaviour). Cross-runtime
    /// identity checks pin a generous value here so no wall-clock timeout
    /// can alter a real-time run's decision sequence.
    pub base_timeout_ms: Option<u64>,
    /// Width of the parallel crypto pipeline
    /// ([`ClusterBuilder::crypto_threads`]); 1 = inline. Affects real-time
    /// runtimes only — the simulator always executes crypto inline.
    pub crypto_threads: usize,
    /// Aggregate rate (tx/s) of *probe* transactions injected open-loop on
    /// top of the saturated filler load; 0 = none. Probes are what give the
    /// real-time runtimes measurable submit→commit latency percentiles —
    /// the filler the proposers generate themselves has no submit time.
    pub probe_rate: f64,
    /// Durable-store configuration (`ClusterBuilder::with_store`): every
    /// node persists its ledger under `dir/node-<i>`, syncing per the
    /// policy. `None` — the default — runs volatile, which keeps the
    /// simulator rows of the trajectory byte-identical across sweeps.
    pub store: Option<(std::path::PathBuf, FsyncPolicy)>,
    /// Client-RPC ingress load ([`Scenario::with_ingress`]): an open-loop
    /// fleet submitting through the §11 front end and admission gates, so
    /// the run's `RunReport` carries a populated `ingress` section
    /// (accepted/shed/lost counts, per-lane submit→commit percentiles).
    /// `None` — the default — runs without client ingress.
    pub ingress: Option<IngressLoad>,
    /// Socket engine for TCP-runtime runs ([`ClusterBuilder::with_tcp_engine`]):
    /// the default reactor pool, a pinned pool size, or the legacy
    /// thread-per-peer engine (the before/after axis of the scaling sweep).
    /// Simulator and threaded runs ignore it.
    pub tcp_engine: TcpEngine,
}

impl ExperimentConfig {
    /// A FLO configuration with the paper's defaults.
    pub fn flo(n: usize, workers: usize, batch: usize, tx_size: usize) -> Self {
        ExperimentConfig {
            system: System::Flo,
            n,
            workers,
            batch,
            tx_size,
            network: "single-dc".into(),
            duration_ms: 2_000,
            crashed: 0,
            byzantine: 0,
            seed: 1,
            base_timeout_ms: None,
            crypto_threads: 1,
            probe_rate: 0.0,
            store: None,
            ingress: None,
            tcp_engine: TcpEngine::default(),
        }
    }

    /// Pins the TCP runtime's reactor-pool size (`0` = the documented
    /// default, [`DEFAULT_REACTOR_THREADS`]).
    pub fn with_reactor_threads(mut self, k: usize) -> Self {
        self.tcp_engine = TcpEngine::Reactor { threads: k };
        self
    }

    /// Runs TCP clusters on the legacy thread-per-peer engine — the
    /// "before" side of the reactor scaling comparison.
    pub fn with_thread_per_peer(mut self) -> Self {
        self.tcp_engine = TcpEngine::ThreadPerPeer;
        self
    }

    /// Attaches an open-loop client-RPC ingress fleet to the run (see
    /// [`IngressLoad`]): `clients` closed-loop submitters with the given
    /// think time, retrying typed refusals with jittered backoff. The run's
    /// report then carries a populated `ingress` section.
    pub fn with_ingress(mut self, load: IngressLoad) -> Self {
        self.ingress = Some(load);
        self
    }

    /// Gives every node a durable store under `dir` (see
    /// [`ClusterBuilder::with_store`]) — the knob behind the trajectory's
    /// fsync-policy sweep.
    pub fn with_store(mut self, dir: impl Into<std::path::PathBuf>, policy: FsyncPolicy) -> Self {
        self.store = Some((dir.into(), policy));
        self
    }

    /// Sets the parallel-crypto-pipeline width (see
    /// [`ClusterBuilder::crypto_threads`]).
    pub fn with_crypto_threads(mut self, threads: usize) -> Self {
        self.crypto_threads = threads.max(1);
        self
    }

    /// Injects an open-loop probe stream at `rate_per_sec` (σ-sized
    /// transactions, round-robin across nodes) on top of the saturated
    /// load, so real-time runs report real submit→commit latency
    /// percentiles.
    pub fn with_probe_rate(mut self, rate_per_sec: f64) -> Self {
        self.probe_rate = rate_per_sec;
        self
    }

    /// Switches the run to the geo-distributed network model.
    pub fn geo(mut self) -> Self {
        self.network = "geo".into();
        self.duration_ms = self.duration_ms.max(5_000);
        self
    }

    /// Switches the run to the idealized network model (1 ms constant
    /// links, free CPU).
    pub fn ideal(mut self) -> Self {
        self.network = "ideal".into();
        self
    }

    /// Pins the protocols' base timeout instead of deriving it from the
    /// topology.
    pub fn with_base_timeout(mut self, timeout: Duration) -> Self {
        self.base_timeout_ms = Some(timeout.as_millis() as u64);
        self
    }

    /// Sets the simulated duration.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration_ms = d.as_millis() as u64;
        self
    }

    /// Uses a different protocol.
    pub fn system(mut self, system: System) -> Self {
        self.system = system;
        self
    }

    /// Crashes the last `crashed` nodes at the start of the measurement.
    pub fn with_crashes(mut self, crashed: usize) -> Self {
        self.crashed = crashed;
        self
    }

    /// Makes the last `byzantine` nodes equivocate on every block they
    /// propose (FLO only; the baselines reject Byzantine roles).
    pub fn with_byzantine(mut self, byzantine: usize) -> Self {
        self.byzantine = byzantine;
        self
    }

    /// The scenario this configuration describes.
    pub fn scenario(&self) -> Scenario {
        let mut scenario = Scenario::new(self.network.clone())
            .with_seed(self.seed)
            .run_for(Duration::from_millis(self.duration_ms));
        if self.probe_rate > 0.0 {
            scenario = scenario.open_loop(self.probe_rate, self.tx_size);
        }
        scenario = match self.network.as_str() {
            "geo" => scenario.geo(),
            "ideal" => scenario.ideal(),
            _ => scenario.single_dc(),
        };
        if self.crashed > 0 {
            scenario = scenario.crash_last_f(self.n, self.crashed, Duration::ZERO);
        }
        if let Some(load) = &self.ingress {
            scenario = scenario.with_ingress(load.clone());
        }
        scenario
    }

    /// The protocol parameters this configuration describes.
    pub fn protocol_params(&self) -> ProtocolParams {
        let timeout = self
            .base_timeout_ms
            .map(Duration::from_millis)
            .unwrap_or_else(|| self.scenario().recommended_timeout());
        ProtocolParams::new(self.n)
            .with_workers(self.workers)
            .with_batch_size(self.batch)
            .with_tx_size(self.tx_size)
            .with_base_timeout(timeout)
    }

    fn builder<P: ClusterProtocol>(&self) -> ClusterBuilder<P>
    where
        P::Msg: fireledger_types::WireSize
            + fireledger_types::WireCodec
            + Clone
            + Send
            + Sync
            + std::fmt::Debug
            + 'static,
    {
        let mut builder = ClusterBuilder::<P>::new(self.protocol_params())
            .with_seed(self.seed)
            .with_last_k(self.byzantine, NodeRole::Equivocate)
            .crypto_threads(self.crypto_threads)
            .with_tcp_engine(self.tcp_engine);
        if let Some((dir, policy)) = &self.store {
            builder = builder.with_store(dir.clone(), *policy);
        }
        builder
    }

    /// Runs the experiment on `runtime` with an optional CPU-model override.
    pub fn run_on<R: Runtime>(&self, runtime: &R, cost: Option<CostModel>) -> ExperimentResult {
        self.run_full_on(runtime, cost).0
    }

    /// Like [`ExperimentConfig::run_on`], but also returns every node's
    /// delivered blocks — the input to cross-runtime ledger-identity checks
    /// ([`check_delivery_prefixes`]).
    pub fn run_full_on<R: Runtime>(
        &self,
        runtime: &R,
        cost: Option<CostModel>,
    ) -> (ExperimentResult, Vec<Vec<Delivery>>) {
        let mut scenario = self.scenario();
        if let Some(cost) = cost {
            scenario = scenario.with_cost(cost);
        }
        let (report, deliveries) = match self.system {
            System::Flo => runtime.run_full(&self.builder::<FloCluster>(), &scenario),
            System::Wrb => runtime.run_full(&self.builder::<Worker>(), &scenario),
            System::Pbft => runtime.run_full(&self.builder::<PbftNode>(), &scenario),
            System::HotStuff => runtime.run_full(&self.builder::<HotStuffNode>(), &scenario),
            System::BftSmart => runtime.run_full(&self.builder::<BftSmartNode>(), &scenario),
        }
        .expect("experiment configuration must be runnable");
        (
            ExperimentResult {
                config: self.clone(),
                report,
            },
            deliveries,
        )
    }

    /// Runs the experiment on the simulator with the default machine model
    /// (m5.xlarge).
    pub fn run(&self) -> ExperimentResult {
        self.run_on(&Simulator, None)
    }

    /// Overrides the CPU model (e.g. `CostModel::c5_4xlarge()` for the §7.6
    /// comparison).
    pub fn run_with_cost(&self, cost: CostModel) -> ExperimentResult {
        self.run_on(&Simulator, Some(cost))
    }

    /// The nodes metrics are averaged over (correct nodes only). Crashed and
    /// Byzantine roles both target the tail of the cluster, so the faulty set
    /// is the union of the two tails, not their sum.
    pub fn correct_nodes(&self) -> Vec<NodeId> {
        let faulty = self.crashed.max(self.byzantine);
        (0..(self.n - faulty) as u32).map(NodeId).collect()
    }
}

/// The result of one experiment run: its configuration plus the unified
/// report.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// The unified run report.
    pub report: RunReport,
}

impl ExperimentResult {
    /// Shorthand for the report.
    pub fn summary(&self) -> &RunReport {
        &self.report
    }

    /// The result as a single-line JSON object: the sweep-point configuration
    /// (β, σ, fault counts, ...) alongside the unified report, so downstream
    /// tooling can attribute every row to its point of the parameter grid.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"config\":{{\"system\":\"{:?}\",\"n\":{},\"workers\":{},",
                "\"batch\":{},\"tx_size\":{},\"network\":\"{}\",\"duration_ms\":{},",
                "\"crashed\":{},\"byzantine\":{},\"seed\":{},",
                "\"base_timeout_ms\":{},\"crypto_threads\":{}}},\"report\":{}}}"
            ),
            self.config.system,
            self.config.n,
            self.config.workers,
            self.config.batch,
            self.config.tx_size,
            self.config.network,
            self.config.duration_ms,
            self.config.crashed,
            self.config.byzantine,
            self.config.seed,
            self.config
                .base_timeout_ms
                .map_or("null".to_string(), |ms| ms.to_string()),
            self.config.crypto_threads,
            self.report.to_json(),
        )
    }

    /// Prints a human-readable row plus a machine-readable `JSON:` line.
    pub fn emit(&self, label: &str) {
        println!(
            "{label:<28} n={:<3} ω={:<2} β={:<5} σ={:<5} net={:<9} | tps={:>10.0} bps={:>8.1} lat(avg)={:>7.3}s p95={:>7.3}s rps={:>5.2} msgs={:>8}",
            self.config.n,
            self.config.workers,
            self.config.batch,
            self.config.tx_size,
            self.config.network,
            self.report.tps,
            self.report.bps,
            self.report.avg_latency_secs,
            self.report.p95_latency_secs,
            self.report.recoveries_per_sec,
            self.report.msgs_sent,
        );
        println!("JSON: {}", self.to_json());
    }
}

/// Whether the harness should run the full (slow) parameter grids.
/// Controlled by the `FIRELEDGER_BENCH_FULL` environment variable; the default
/// is a quick grid so `cargo run` on every binary finishes in minutes.
pub fn full_mode() -> bool {
    std::env::var("FIRELEDGER_BENCH_FULL").is_ok_and(|v| v != "0")
}

/// The worker counts to sweep (the paper sweeps 1..10; quick mode uses a
/// representative subset).
pub fn worker_sweep() -> Vec<usize> {
    if full_mode() {
        (1..=10).collect()
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The paper's cluster sizes.
pub fn cluster_sizes() -> Vec<usize> {
    vec![4, 7, 10]
}

/// The paper's batch sizes β.
pub fn batch_sizes() -> Vec<usize> {
    vec![10, 100, 1000]
}

/// The paper's transaction sizes σ.
pub fn tx_sizes() -> Vec<usize> {
    vec![512, 1024, 4096]
}

/// Prints the standard experiment banner.
pub fn banner(name: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("FireLedger reproduction — {name}");
    println!("Paper reference: {paper_ref}");
    println!(
        "Mode: {}",
        if full_mode() {
            "FULL"
        } else {
            "quick (set FIRELEDGER_BENCH_FULL=1 for the full grid)"
        }
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flo_run_produces_throughput() {
        let result = ExperimentConfig::flo(4, 1, 10, 512)
            .duration(Duration::from_millis(300))
            .run();
        assert!(result.report.tps > 0.0, "tps = {}", result.report.tps);
        assert!(result.report.bps > 0.0);
        assert_eq!(result.report.protocol, "flo");
    }

    #[test]
    fn every_system_of_the_matrix_produces_throughput() {
        for system in System::ALL {
            let result = ExperimentConfig::flo(4, 1, 10, 512)
                .system(system)
                .duration(Duration::from_millis(300))
                .run();
            assert!(result.report.tps > 0.0, "{system:?} produced no throughput");
        }
    }

    #[test]
    fn crash_run_restricts_to_correct_nodes() {
        let cfg = ExperimentConfig::flo(4, 1, 10, 512)
            .with_crashes(1)
            .duration(Duration::from_millis(400));
        let result = cfg.run();
        assert_eq!(cfg.correct_nodes().len(), 3);
        assert!(result.report.tps > 0.0);
        assert_eq!(
            result.report.per_node[3].blocks, 0,
            "crashed node delivered"
        );
    }

    #[test]
    fn byzantine_run_reports_recoveries() {
        let result = ExperimentConfig::flo(4, 1, 10, 512)
            .with_byzantine(1)
            .duration(Duration::from_millis(600))
            .run();
        assert!(result.report.recoveries_per_sec >= 0.0);
        assert!(result.report.tps > 0.0);
    }

    #[test]
    fn sweep_helpers_match_paper_table2() {
        assert_eq!(cluster_sizes(), vec![4, 7, 10]);
        assert_eq!(batch_sizes(), vec![10, 100, 1000]);
        assert_eq!(tx_sizes(), vec![512, 1024, 4096]);
        assert!(!worker_sweep().is_empty());
    }

    #[test]
    fn json_rows_carry_the_sweep_configuration() {
        let result = ExperimentConfig::flo(4, 2, 99, 512)
            .duration(Duration::from_millis(200))
            .run();
        let json = result.to_json();
        assert!(json.contains("\"batch\":99"));
        assert!(json.contains("\"system\":\"Flo\""));
        assert!(json.contains(&format!(
            "\"report\":{{\"schema_version\":{},\"protocol\":\"flo\"",
            RunReport::SCHEMA_VERSION
        )));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn overlapping_fault_tails_are_not_double_counted() {
        let cfg = ExperimentConfig::flo(4, 1, 10, 512)
            .with_crashes(1)
            .with_byzantine(1);
        // Both faults land on node 3; nodes 0-2 are correct.
        assert_eq!(cfg.correct_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn geo_configs_use_geo_scenarios_and_timeouts() {
        let cfg = ExperimentConfig::flo(10, 1, 100, 512).geo();
        assert_eq!(cfg.scenario().network_label(), "geo");
        assert!(cfg.protocol_params().base_timeout >= Duration::from_millis(400));
    }
}
