//! Figure 7: FLO's transaction throughput in a single data-center across the
//! full n × ω × σ × β grid of Table 2.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 7 — tps, single data-center", "Figure 7, §7.2.1");
    let duration = Duration::from_millis(if full_mode() { 3000 } else { 800 });
    for n in cluster_sizes() {
        for beta in batch_sizes() {
            for sigma in tx_sizes() {
                for omega in worker_sweep() {
                    let r = ExperimentConfig::flo(n, omega, beta, sigma)
                        .duration(duration)
                        .run();
                    r.emit(&format!("fig7 n={n} β={beta} σ={sigma} ω={omega}"));
                }
            }
        }
    }
    println!("\nExpected shape (paper): tps ≈ β·bps; grows with ω and β, shrinks with σ;");
    println!("σ=512, β=1000 peaks in the hundred-thousand-tps range.");
}
