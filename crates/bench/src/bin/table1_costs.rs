//! Table 1: per-mode cost of FireLedger — communication steps, signature
//! operations and decision latency in rounds — for the fault-free, omission
//! and Byzantine cases.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Table 1 — cost per operating mode", "Table 1, §5.4");
    let rows = [
        ("fault-free", 0usize, 0usize),
        ("crash/omission", 1, 0),
        ("byzantine", 0, 1),
    ];
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "mode", "blocks", "msgs/block", "sigs/block", "verifies/block", "lat(rounds)"
    );
    for (label, crashed, byz) in rows {
        let cfg = ExperimentConfig::flo(4, 1, 10, 512)
            .with_crashes(crashed)
            .with_byzantine(byz)
            .duration(Duration::from_millis(if byz > 0 { 1500 } else { 800 }));
        let r = cfg.run();
        let blocks = (r.report.bps * r.report.duration_secs).max(1.0);
        let f = (cfg.n - 1) / 3;
        println!(
            "{:<16} {:>10.0} {:>12.1} {:>12.2} {:>14.2} {:>12}",
            label,
            blocks * cfg.n as f64,
            r.report.msgs_sent as f64 / (blocks * cfg.n as f64),
            r.report.signatures as f64 / (blocks * cfg.n as f64),
            r.report.verifications as f64 / (blocks * cfg.n as f64),
            f + 1,
        );
        r.emit(label);
    }
    println!(
        "\nExpected shape (paper): fault-free ≈ 1 signature per block and ~n messages per block;"
    );
    println!("omission adds the OBBC fallback; Byzantine adds RB + n parallel AB (recoveries).");
}
