//! Figure 10: FLO's throughput with a 100-node single data-center cluster,
//! σ = 512, β ∈ {10, 100, 1000}, ω ∈ 1..5.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 10 — scalability at n = 100", "Figure 10, §7.3");
    let omegas = if full_mode() {
        vec![1, 2, 3, 4, 5]
    } else {
        vec![1, 2]
    };
    let betas = if full_mode() {
        batch_sizes()
    } else {
        vec![100, 1000]
    };
    for beta in betas {
        for omega in &omegas {
            let r = ExperimentConfig::flo(100, *omega, beta, 512)
                .duration(Duration::from_millis(if full_mode() { 1000 } else { 400 }))
                .run();
            r.emit(&format!("fig10 n=100 β={beta} ω={omega}"));
        }
    }
    println!("\nExpected shape (paper): around an order of magnitude below the n=10 throughput;");
    println!("the number of workers stops mattering because communication dominates.");
}
