//! Figure 16: FLO vs HotStuff on c5.4xlarge-class machines, sweeping the
//! cluster size and the transaction size (f = ⌊n/3⌋ − 1, β = 1000, ω = 8).

use fireledger_bench::*;
use fireledger_crypto::CostModel;
use std::time::Duration;

fn main() {
    banner("Figure 16 — FLO vs HotStuff", "Figure 16, §7.6");
    let cost = CostModel::c5_4xlarge();
    let sizes = if full_mode() {
        vec![4, 7, 10, 16, 31]
    } else {
        vec![4, 10]
    };
    let duration = Duration::from_millis(if full_mode() { 3000 } else { 800 });
    for sigma in tx_sizes() {
        for n in &sizes {
            let flo = ExperimentConfig::flo(*n, 8, 1000, sigma)
                .duration(duration)
                .run_with_cost(cost);
            let hs = ExperimentConfig::flo(*n, 1, 1000, sigma)
                .system(System::HotStuff)
                .duration(duration)
                .run_with_cost(cost);
            let speedup = if hs.report.tps > 0.0 {
                flo.report.tps / hs.report.tps
            } else {
                f64::INFINITY
            };
            println!(
                "n={n:<3} σ={sigma:<5}  FLO tps={:>10.0} lat={:>6.3}s | HotStuff tps={:>10.0} lat={:>6.3}s | FLO/HotStuff = {:.2}x",
                flo.report.tps, flo.report.avg_latency_secs, hs.report.tps, hs.report.avg_latency_secs, speedup
            );
            flo.emit(&format!("fig16 flo n={n} σ={sigma}"));
            hs.emit(&format!("fig16 hotstuff n={n} σ={sigma}"));
        }
    }
    println!("\nExpected shape (paper): FLO 20%–300% higher throughput; HotStuff's latency is flatter in n");
    println!("(3-round finality) while FLO's latency grows with n (f+1-round finality).");
}
