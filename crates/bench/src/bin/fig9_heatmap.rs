//! Figure 9: relative time spent between the five per-block lifecycle events
//! (A block proposal, B header proposal, C tentative decision, D definite
//! decision, E FLO delivery), σ = 512.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 9 — phase breakdown heatmap", "Figure 9, §7.2.2");
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8}",
        "config", "A→B", "B→C", "C→D", "D→E"
    );
    for n in cluster_sizes() {
        for omega in [1usize, 5] {
            for beta in batch_sizes() {
                let r = ExperimentConfig::flo(n, omega, beta, 512)
                    .duration(Duration::from_millis(if full_mode() { 2500 } else { 800 }))
                    .run();
                let p = r.report.phase_breakdown;
                println!(
                    "n={:<3} ω={:<3} β={:<6}     {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                    n, omega, beta, p[0], p[1], p[2], p[3]
                );
                println!("JSON: {{\"figure\":9,\"n\":{n},\"omega\":{omega},\"beta\":{beta},\"phases\":[{:.4},{:.4},{:.4},{:.4}]}}", p[0], p[1], p[2], p[3]);
            }
        }
    }
    println!("\nExpected shape (paper): the block→header interval (A→B) dominates; larger ω shifts weight");
    println!("to the final FLO-delivery interval (D→E).");
}
