//! Figure 14: FLO's transaction throughput in the geo-distributed deployment,
//! σ = 512.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 14 — tps, multi data-center", "Figure 14, §7.5.1");
    for n in cluster_sizes() {
        for beta in batch_sizes() {
            for omega in worker_sweep() {
                let r = ExperimentConfig::flo(n, omega, beta, 512)
                    .geo()
                    .duration(Duration::from_millis(if full_mode() {
                        20_000
                    } else {
                        5_000
                    }))
                    .run();
                r.emit(&format!("fig14 n={n} β={beta} ω={omega}"));
            }
        }
    }
    println!("\nExpected shape (paper): tens of thousands of tps at best (≈30K at σ=512), growing with ω and β.");
}
