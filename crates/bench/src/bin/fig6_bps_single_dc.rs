//! Figure 6: FLO's blocks-per-second rate in a single data-center for
//! n ∈ {4, 7, 10} as a function of the number of workers ω.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 6 — bps, single data-center", "Figure 6, §7.2.1");
    for n in cluster_sizes() {
        for omega in worker_sweep() {
            let r = ExperimentConfig::flo(n, omega, 100, 512)
                .duration(Duration::from_millis(if full_mode() { 3000 } else { 1000 }))
                .run();
            r.emit(&format!("fig6 n={n} ω={omega}"));
        }
    }
    println!(
        "\nExpected shape (paper): bps grows with ω (better CPU utilisation) and shrinks with n"
    );
    println!("(each decision costs more communication).");
}
