//! Figure 17: FLO vs a BFT-SMaRt-style ordering service on c5.4xlarge-class
//! machines (f = ⌊n/3⌋ − 1, β = 1000, ω = 8).

use fireledger_bench::*;
use fireledger_crypto::CostModel;
use std::time::Duration;

fn main() {
    banner("Figure 17 — FLO vs BFT-SMaRt", "Figure 17, §7.6");
    let cost = CostModel::c5_4xlarge();
    let sizes = if full_mode() {
        vec![4, 7, 10, 16, 31]
    } else {
        vec![4, 10]
    };
    let duration = Duration::from_millis(if full_mode() { 3000 } else { 800 });
    for sigma in tx_sizes() {
        for n in &sizes {
            let flo = ExperimentConfig::flo(*n, 8, 1000, sigma)
                .duration(duration)
                .run_with_cost(cost);
            let bs = ExperimentConfig::flo(*n, 1, 1000, sigma)
                .system(System::BftSmart)
                .duration(duration)
                .run_with_cost(cost);
            let speedup = if bs.report.tps > 0.0 {
                flo.report.tps / bs.report.tps
            } else {
                f64::INFINITY
            };
            println!(
                "n={n:<3} σ={sigma:<5}  FLO tps={:>10.0} lat={:>6.3}s | BFT-SMaRt tps={:>10.0} lat={:>6.3}s | FLO/BFT-SMaRt = {:.2}x",
                flo.report.tps, flo.report.avg_latency_secs, bs.report.tps, bs.report.avg_latency_secs, speedup
            );
            flo.emit(&format!("fig17 flo n={n} σ={sigma}"));
            bs.emit(&format!("fig17 bftsmart n={n} σ={sigma}"));
        }
    }
    println!("\nExpected shape (paper): FLO 40%–600% higher throughput; the gap narrows as transactions grow");
    println!("because raw data dissemination dominates.");
}
