//! Figure 8: CDFs of FLO's block delivery latency in a single data-center for
//! σ = 512 and the n × ω × β grid.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner(
        "Figure 8 — latency CDFs, single data-center",
        "Figure 8, §7.2.2",
    );
    let omegas = if full_mode() {
        vec![1, 5, 10]
    } else {
        vec![1, 5]
    };
    for n in cluster_sizes() {
        for omega in &omegas {
            for beta in batch_sizes() {
                let r = ExperimentConfig::flo(n, *omega, beta, 512)
                    .duration(Duration::from_millis(if full_mode() { 3000 } else { 800 }))
                    .run();
                println!("--- CDF n={n} ω={omega} β={beta} ---");
                for (lat, frac) in &r.report.latency_cdf {
                    println!("  {:>8.4}s  {:>5.2}", lat, frac);
                }
                r.emit(&format!("fig8 n={n} ω={omega} β={beta}"));
            }
        }
    }
    println!(
        "\nExpected shape (paper): ω = 1 stays well below a second; latency grows with ω because"
    );
    println!("a single slow worker delays the whole round-robin merge.");
}
