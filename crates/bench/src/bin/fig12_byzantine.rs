//! Figure 12: FLO's throughput and recovery rate (rps) with an equivocating
//! Byzantine node, σ = 512.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 12 — Byzantine failures", "Figure 12, §7.4.2");
    let omegas = if full_mode() {
        vec![1, 3, 5]
    } else {
        vec![1, 3]
    };
    for n in cluster_sizes() {
        for beta in batch_sizes() {
            for omega in &omegas {
                let r = ExperimentConfig::flo(n, *omega, beta, 512)
                    .with_byzantine(1)
                    .duration(Duration::from_millis(if full_mode() { 3000 } else { 1200 }))
                    .run();
                r.emit(&format!("fig12 n={n} β={beta} ω={omega}"));
            }
        }
    }
    println!(
        "\nExpected shape (paper): throughput drops relative to the optimistic case and recoveries"
    );
    println!("per second shrink as β and n grow, but the system keeps delivering (>10K tps in some configs).");
}
