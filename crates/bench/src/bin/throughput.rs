//! The persistent throughput benchmark: the repo's performance trajectory.
//!
//! Runs the hot-path protocols (FLO, HotStuff, PBFT) on all three runtimes
//! (sim, threads, tcp) with one mid-size configuration and appends the
//! resulting points — tps, bps, latency percentiles, and an
//! allocations-per-block proxy — as one labelled *run* to
//! `BENCH_throughput.json`. The file is the benchmark **trajectory**: every
//! PR that touches a hot path appends a run, so regressions and wins stay
//! visible in history instead of living only in PR descriptions.
//!
//! Besides the 3-system × 3-runtime grid, every run appends a
//! **crypto-threads sweep**: FLO on both real-time runtimes at pipeline
//! widths 1/2/4 with a crypto-heavy configuration (σ = 2048), which is the
//! cell where the parallel crypto pipeline (`ClusterBuilder::
//! crypto_threads`) earns its keep on multi-core hosts. Real-time grid and
//! sweep cells carry a light open-loop probe stream so their
//! `p50/p99_latency_secs` are real submit→commit numbers instead of 0.0.
//!
//! It also appends an **fsync-policy sweep**: FLO on the TCP runtime with a
//! durable store (`ClusterBuilder::with_store`) at `fsync=always`,
//! `fsync=every64` and `fsync=os` — the cost of the durable ledger on the
//! commit path, visible as the `durability` key on each point.
//!
//! Every run also carries a **catch-up row** (the `catch_up` key, kept
//! separate from `points`): FLO on the TCP runtime with one node joining
//! late and range-fetching a 5 000-round gap (300 in smoke mode) through
//! the state-sync sub-protocol — the blocks-per-second fetch bandwidth of
//! `docs/WIRE_FORMAT.md` §10, measured from the late node's restart to the
//! moment its ledger reaches the join round.
//!
//! Finally every run carries an **ingress section** (the `ingress` key):
//! three soak rows driving the `docs/WIRE_FORMAT.md` §11 client fleet
//! through a partition-heal + crash-recover on each runtime, plus one
//! overload row with shrunken admission budgets. The rows record the
//! client-visible SLO — accepted must equal committed (zero
//! accepted-then-lost; the binary exits nonzero otherwise), overload must
//! shed with typed refusals, and the sim soak must be byte-deterministic.
//!
//! Environment:
//!
//! * `FIRELEDGER_BENCH_LABEL` — label recorded on the run (default `dev`);
//! * `FIRELEDGER_BENCH_SMOKE=1` — short CI smoke durations;
//! * `FIRELEDGER_BENCH_FULL=1` — long-form durations;
//! * `FIRELEDGER_BENCH_OUT` — output path (default `BENCH_throughput.json`);
//! * `FIRELEDGER_BENCH_CRYPTO_THREADS` — pipeline width for the main grid
//!   (default 1; the simulator always runs inline regardless).
//!
//! Run with: `cargo run --release -p fireledger-bench --bin throughput`

// The counting allocator below is the one place the workspace needs
// `unsafe`: `GlobalAlloc` is an unsafe trait. The impl only forwards to
// `std::alloc::System` and bumps atomic counters.
use fireledger_bench::*;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Allocation counters maintained by [`CountingAllocator`].
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A global allocator that counts every allocation and reallocation, then
/// delegates to the system allocator. The counters are the source of the
/// `allocs_per_block` proxy: runs execute sequentially, so the delta across
/// one run attributes its allocation traffic (protocol + runtime + harness)
/// to that run.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One measured cell of the system × runtime grid.
struct Point {
    system: System,
    runtime: &'static str,
    config: ExperimentConfig,
    report: RunReport,
    allocs: u64,
    alloc_bytes: u64,
}

impl Point {
    fn blocks(&self) -> u64 {
        self.report.per_node.iter().map(|d| d.blocks).sum()
    }

    fn txs(&self) -> u64 {
        self.report.per_node.iter().map(|d| d.txs).sum()
    }

    fn allocs_per_block(&self) -> f64 {
        self.allocs as f64 / self.blocks().max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"system\":\"{:?}\",\"runtime\":\"{}\",\"n\":{},\"workers\":{},",
                "\"batch\":{},\"tx_size\":{},\"crypto_threads\":{},",
                "\"durability\":\"{}\",\"duration_secs\":{:.4},",
                "\"tps\":{:.2},\"bps\":{:.2},",
                "\"p50_latency_secs\":{:.6},\"p99_latency_secs\":{:.6},",
                "\"blocks\":{},\"txs\":{},",
                "\"allocs\":{},\"alloc_bytes\":{},\"allocs_per_block\":{:.1}}}"
            ),
            self.system,
            self.runtime,
            self.config.n,
            self.config.workers,
            self.config.batch,
            self.config.tx_size,
            self.config.crypto_threads,
            self.report.durability,
            self.report.duration_secs,
            self.report.tps,
            self.report.bps,
            self.report.p50_latency_secs,
            self.report.p99_latency_secs,
            self.blocks(),
            self.txs(),
            self.allocs,
            self.alloc_bytes,
            self.allocs_per_block(),
        )
    }
}

fn measure<R: Runtime>(cfg: &ExperimentConfig, runtime: &R) -> Point {
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    let (result, _deliveries) = cfg.run_full_on(runtime, None);
    Point {
        system: cfg.system,
        runtime: runtime.name(),
        config: cfg.clone(),
        report: result.report,
        allocs: ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before,
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before,
    }
}

/// Splices `run_json` into an existing trajectory file, or starts a fresh
/// one. The file layout is fixed — a `runs` array of one-line run objects —
/// so appending is a literal text splice before the closing `\n]\n}`.
fn append_run(path: &str, run_json: &str) -> std::io::Result<()> {
    const HEAD: &str = "{\n\"schema_version\": 1,\n\"bench\": \"throughput\",\n\"runs\": [\n";
    const TAIL: &str = "\n]\n}\n";
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) if existing.starts_with(HEAD) && existing.ends_with(TAIL) => {
            let body = &existing[HEAD.len()..existing.len() - TAIL.len()];
            format!("{HEAD}{body},\n{run_json}{TAIL}")
        }
        Ok(_) => {
            eprintln!("warning: {path} is not a throughput trajectory; rewriting it");
            format!("{HEAD}{run_json}{TAIL}")
        }
        Err(_) => format!("{HEAD}{run_json}{TAIL}"),
    };
    std::fs::write(path, merged)
}

fn main() {
    banner("throughput trajectory", "§7.2 (single-DC throughput)");
    let label = std::env::var("FIRELEDGER_BENCH_LABEL").unwrap_or_else(|_| "dev".to_string());
    let out_path = std::env::var("FIRELEDGER_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let smoke = std::env::var("FIRELEDGER_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (mode, duration) = if smoke {
        ("smoke", Duration::from_millis(400))
    } else if full_mode() {
        ("full", Duration::from_millis(4000))
    } else {
        ("quick", Duration::from_millis(1500))
    };

    let crypto_threads: usize = std::env::var("FIRELEDGER_BENCH_CRYPTO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    // Probe stream for the real-time cells: light enough to leave the
    // saturated throughput untouched (hundreds of tx/s against hundreds of
    // thousands), dense enough for stable latency percentiles.
    const PROBE_RATE: f64 = 300.0;

    let emit = |p: &Point| {
        println!(
            "{:<9} {:<8} k={} | tps={:>9.0} bps={:>7.1} p50={:>8.5}s p99={:>8.5}s blocks={:>6} allocs/block={:>8.0}",
            format!("{:?}", p.system),
            p.runtime,
            p.config.crypto_threads,
            p.report.tps,
            p.report.bps,
            p.report.p50_latency_secs,
            p.report.p99_latency_secs,
            p.blocks(),
            p.allocs_per_block(),
        );
    };

    // One mid-size fast-path configuration: 4 nodes, 2 FLO workers,
    // β = 100 transactions of σ = 512 bytes. The pinned base timeout keeps
    // real-time runs on the optimistic path (no wall-clock view changes),
    // so the grid measures steady-state throughput, not timeout tuning.
    // The simulator cell keeps the exact saturated workload (and an inline
    // pipeline) so its rows stay byte-identical across sweeps — that
    // invariance is the determinism check the trajectory carries.
    let systems = [System::Flo, System::HotStuff, System::Pbft];
    let mut points = Vec::new();
    for system in systems {
        let cfg = ExperimentConfig::flo(4, 2, 100, 512)
            .system(system)
            .with_base_timeout(Duration::from_millis(250))
            .duration(duration);
        let rt_cfg = cfg
            .clone()
            .with_crypto_threads(crypto_threads)
            .with_probe_rate(PROBE_RATE);
        let sim = measure(&cfg, &Simulator);
        let threads = measure(&rt_cfg, &Threads);
        let tcp = measure(&rt_cfg, &Tcp);
        for p in [sim, threads, tcp] {
            emit(&p);
            points.push(p);
        }
    }

    // The crypto-threads sweep: FLO on both real-time runtimes at pipeline
    // widths 1/2/4, with big σ = 2048 transactions so block-body hashing
    // dominates — the cell where off-loop batch verification and parallel
    // merkle pay. (On a single-core host the pool clamps to inline and the
    // sweep shows a flat profile; the points still pin that the pipeline
    // never *costs* throughput.)
    for threads in [1usize, 2, 4] {
        let cfg = ExperimentConfig::flo(4, 2, 100, 2048)
            .with_base_timeout(Duration::from_millis(250))
            .duration(duration)
            .with_crypto_threads(threads)
            .with_probe_rate(PROBE_RATE);
        for p in [measure(&cfg, &Threads), measure(&cfg, &Tcp)] {
            emit(&p);
            points.push(p);
        }
    }

    // The fsync-policy sweep: FLO on the TCP runtime with every node
    // persisting through a durable store (segmented block log + consensus
    // WAL), at the three sync policies. The spread between `fsync-always`
    // and the other two rows is the price of per-record fdatasync on the
    // commit path; `fsync-every64` is the recommended middle ground. Only
    // the real-time TCP cell runs durable — the simulator rows above stay
    // store-free so they remain byte-identical across sweeps.
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(64),
        FsyncPolicy::OsDefault,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "fl-bench-store-{}-{}",
            std::process::id(),
            policy.label()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = ExperimentConfig::flo(4, 2, 100, 512)
            .with_base_timeout(Duration::from_millis(250))
            .duration(duration)
            .with_crypto_threads(crypto_threads)
            .with_probe_rate(PROBE_RATE)
            .with_store(&dir, policy);
        let p = measure(&cfg, &Tcp);
        emit(&p);
        points.push(p);
        std::fs::remove_dir_all(&dir).ok();
    }

    // The catch-up row: FLO on the TCP runtime with one node joining late.
    // It spawns dormant, the other three grow the ledger to the join round,
    // then it restarts and range-fetches the entire missed prefix through
    // the state-sync sub-protocol (`SyncMsg` over real sockets,
    // header-verify before bodies — WIRE_FORMAT.md §10). The recorded rate
    // is blocks fetched per wall-clock second over exactly the fetch
    // window, not the live tail afterwards. Small blocks (β = 8, σ = 64)
    // and a short base timeout keep the *growth* phase quick so the row
    // measures fetch bandwidth, not how long three nodes take to produce
    // the gap.
    let gap: u64 = if smoke { 300 } else { 5_000 };
    let catch_params = ProtocolParams::new(4)
        .with_workers(1)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(20));
    let catch_builder = ClusterBuilder::<FloCluster>::new(catch_params)
        .with_seed(7)
        .with_late_join(NodeId(3), gap);
    let deadline = Duration::from_secs(if smoke { 60 } else { 180 });
    let catch_up = match Tcp.measure_catch_up(&catch_builder, deadline) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: catch-up measurement failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "catch-up  tcp      Flo | gap={} rounds fetched in {:.3}s = {:>7.0} blocks/s",
        catch_up.gap_rounds,
        catch_up.fetch_secs,
        catch_up.blocks_per_sec(),
    );
    let catch_json = format!(
        "{{\"system\":\"Flo\",\"runtime\":\"tcp\",\"gap_rounds\":{},\"fetch_secs\":{:.4},\"blocks_per_sec\":{:.1}}}",
        catch_up.gap_rounds,
        catch_up.fetch_secs,
        catch_up.blocks_per_sec(),
    );

    // The ingress section: the client-facing SLO rows of the trajectory.
    //
    // Three **soak** rows (sim / threads / tcp) run the §11 client fleet
    // through a partition-heal plus a crash-recover — the supported fault
    // shapes — and record the admission outcome: accepted vs. committed
    // (must balance: zero accepted-then-lost), typed sheds, and per-lane
    // submit→commit percentiles. One **overload** row (sim) shrinks the
    // admission budgets until the gates must shed, pinning that overload
    // produces typed refusals, not loss. The sim soak runs twice and the
    // two ingress sections must be byte-identical — the determinism check
    // this section carries, mirroring the grid's byte-identical sim rows.
    let soak_cluster = || {
        ClusterBuilder::<FloCluster>::new(
            ProtocolParams::new(4)
                .with_workers(1)
                .with_batch_size(8)
                .with_tx_size(64)
                .with_base_timeout(Duration::from_millis(20))
                .with_fill_blocks(false),
        )
        .with_seed(23)
    };
    let soak_scenario = Scenario::new("ingress-soak")
        .ideal()
        .with_faults(
            fireledger_runtime::catalog::partition_heal(
                4,
                Duration::from_millis(300),
                Duration::from_millis(600),
            )
            .crash_recover(
                NodeId(3),
                Duration::from_millis(800),
                Duration::from_millis(1100),
            ),
        )
        .run_for(Duration::from_millis(1600))
        .with_warmup(Duration::ZERO)
        .with_seed(23)
        .with_ingress(
            IngressLoad::new(8, Duration::from_millis(10), 64)
                .with_drain(Duration::from_millis(400)),
        );
    let ingress_row = |runtime: &str, scenario: &str, ing: &IngressReport| {
        println!(
            "ingress   {runtime:<8} {scenario:<15} | accepted={:>5} committed={:>5} lost={} shed={:>4} retries={:>4} p99={:.4}s",
            ing.accepted(),
            ing.committed(),
            ing.lost(),
            ing.shed(),
            ing.retries,
            ing.lanes
                .iter()
                .map(|l| l.p99_latency_secs)
                .fold(0.0, f64::max),
        );
        if ing.lost() > 0 {
            eprintln!("error: accepted-then-lost on {runtime}/{scenario}: {ing:?}");
            std::process::exit(1);
        }
        format!(
            "{{\"runtime\":\"{runtime}\",\"scenario\":\"{scenario}\",\"report\":{}}}",
            ing.to_json()
        )
    };
    let soak_sim = Simulator
        .run(&soak_cluster(), &soak_scenario)
        .expect("ingress soak (sim)");
    let soak_sim_again = Simulator
        .run(&soak_cluster(), &soak_scenario)
        .expect("ingress soak (sim, determinism re-run)");
    if soak_sim.ingress.to_json() != soak_sim_again.ingress.to_json() {
        eprintln!("error: sim ingress soak is not byte-deterministic");
        std::process::exit(1);
    }
    let soak_threads = Threads
        .run(&soak_cluster(), &soak_scenario)
        .expect("ingress soak (threads)");
    let soak_tcp = Tcp
        .run(&soak_cluster(), &soak_scenario)
        .expect("ingress soak (tcp)");
    // Overload goes through the bench-level API (`ExperimentConfig::
    // with_ingress`): tiny admission budgets against an aggressive fleet.
    let admission = fireledger::AdmissionConfig {
        capacity: 4,
        rate_per_sec: 100,
        burst: 8,
        ..Default::default()
    };
    let overload = ExperimentConfig::flo(4, 1, 8, 64)
        .ideal()
        .with_base_timeout(Duration::from_millis(20))
        .duration(Duration::from_millis(900))
        .with_ingress(
            IngressLoad::new(32, Duration::from_millis(2), 64)
                .with_admission(admission)
                .with_max_retries(2),
        )
        .run_on(&Simulator, None);
    if overload.report.ingress.shed() == 0 {
        eprintln!(
            "error: overload row shed nothing: {:?}",
            overload.report.ingress
        );
        std::process::exit(1);
    }
    let soak_rows = [
        ingress_row("sim", "ingress-soak", &soak_sim.ingress),
        ingress_row("threads", "ingress-soak", &soak_threads.ingress),
        ingress_row("tcp", "ingress-soak", &soak_tcp.ingress),
    ];
    let overload_row = ingress_row("sim", "ingress-overload", &overload.report.ingress);
    let ingress_json = format!(
        "{{\"soak\":[{}],\"overload\":{overload_row}}}",
        soak_rows.join(",")
    );

    // The execution section: the pipelined execution engine's
    // executed-transitions/s rows. FLO runs saturated with *executable*
    // filler (deterministic §12.1 op payloads) and the execution engine
    // enabled, under two workload shapes: `disjoint` (conflict 0% — every
    // conflict component is a single op, the partitioned apply's best case)
    // and `conflict50` (half the ops land on a 4-entry hot key set). Each
    // row records the report's `execution` section — executed blocks/txs,
    // applied transitions, transitions/s, receipt histogram, and the root
    // cross-check counters, which must show zero mismatches. The sim cell
    // runs twice and must serialize byte-identically — execution rides the
    // deterministic slicing, so any divergence is an engine bug.
    let exec_cluster = |conflict_pct: u8| {
        // batch 64 keeps blocks above the partitioned apply's serial
        // threshold, so the conflict knob actually changes the component
        // structure the executor sees.
        ClusterBuilder::<FloCluster>::new(
            ProtocolParams::new(4)
                .with_workers(2)
                .with_batch_size(64)
                .with_tx_size(64)
                .with_base_timeout(Duration::from_millis(250))
                .with_fill_ops(FillOps {
                    accounts: 64,
                    conflict_pct,
                }),
        )
        .with_seed(29)
        .with_execution(ExecConfig::with_genesis(64, 1_000_000))
    };
    let exec_scenario = Scenario::new("exec-throughput")
        .ideal()
        .run_for(duration.min(Duration::from_millis(900)))
        .with_warmup(Duration::ZERO)
        .with_seed(29);
    let exec_row = |runtime: &str, workload: &str, report: &RunReport| {
        let e = &report.execution;
        println!(
            "execution {runtime:<8} {workload:<10} | transitions/s={:>9.0} applied={:>7} blocks={:>6} root_checks={:>5} mismatches={}",
            e.transitions_per_sec, e.applied_transitions, e.executed_blocks,
            e.root_checks, e.root_mismatches,
        );
        if !e.enabled || e.applied_transitions == 0 || e.root_checks == 0 {
            eprintln!("error: execution row {runtime}/{workload} measured nothing: {e:?}");
            std::process::exit(1);
        }
        if e.root_mismatches > 0 {
            eprintln!("error: execution root mismatches on {runtime}/{workload}: {e:?}");
            std::process::exit(1);
        }
        format!(
            "{{\"runtime\":\"{runtime}\",\"workload\":\"{workload}\",\"report\":{}}}",
            e.to_json()
        )
    };
    let mut exec_rows = Vec::new();
    for (workload, conflict_pct) in [("disjoint", 0u8), ("conflict50", 50u8)] {
        let sim = Simulator
            .run(&exec_cluster(conflict_pct), &exec_scenario)
            .expect("execution row (sim)");
        let sim_again = Simulator
            .run(&exec_cluster(conflict_pct), &exec_scenario)
            .expect("execution row (sim, determinism re-run)");
        if sim.execution.to_json() != sim_again.execution.to_json() {
            eprintln!("error: sim execution row '{workload}' is not byte-deterministic");
            std::process::exit(1);
        }
        let threads = Threads
            .run(&exec_cluster(conflict_pct), &exec_scenario)
            .expect("execution row (threads)");
        let tcp = Tcp
            .run(&exec_cluster(conflict_pct), &exec_scenario)
            .expect("execution row (tcp)");
        exec_rows.push(exec_row("sim", workload, &sim));
        exec_rows.push(exec_row("threads", workload, &threads));
        exec_rows.push(exec_row("tcp", workload, &tcp));
    }
    let execution_json = format!("[{}]", exec_rows.join(","));

    // The reactor n-sweep (the `scale` key, PR 10): FLO on the TCP runtime
    // at growing cluster sizes, on both socket engines. The legacy
    // thread-per-peer engine spends n + 2·n·(n−1) threads (a reader and a
    // writer per directed link); the reactor spends n node threads plus a
    // fixed pool. Each row records the cluster's *measured* thread count
    // (the report's `threads` key, snapshotted before shutdown) next to its
    // throughput, so the trajectory carries the before/after comparison.
    // The legacy engine is capped at n = 32 (2 016 threads) — the point of
    // the sweep is that the reactor reaches n = 64 where thread-per-socket
    // is already absurd, not to spawn 8 128 threads to prove it.
    let scale_ns: &[usize] = if smoke {
        &[4, 8, 16]
    } else if full_mode() {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32]
    };
    const LEGACY_SCALE_CAP: usize = 32;
    let scale_dur = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_millis(800)
    };
    let scale_row = |engine: &str, n: usize, report: &RunReport| {
        println!(
            "scale     tcp      Flo | n={n:<3} engine={engine:<15} threads={:>5} tps={:>9.0} bps={:>7.1}",
            report.threads, report.tps, report.bps,
        );
        format!(
            concat!(
                "{{\"system\":\"Flo\",\"runtime\":\"tcp\",\"engine\":\"{}\",\"n\":{},",
                "\"threads\":{},\"tps\":{:.2},\"bps\":{:.2},\"duration_secs\":{:.4}}}"
            ),
            engine, n, report.threads, report.tps, report.bps, report.duration_secs,
        )
    };
    let mut scale_rows = Vec::new();
    for &n in scale_ns {
        // The first committed rounds take visibly longer at n = 64 (an
        // all-to-all mesh of 4 032 sockets warming up); give the largest
        // cell enough wall clock to get past them.
        let dur = if n >= 64 {
            Duration::from_millis(3000)
        } else {
            scale_dur
        };
        let cfg = ExperimentConfig::flo(n, 1, 50, 256)
            .with_base_timeout(Duration::from_millis(500))
            .duration(dur);
        if n <= LEGACY_SCALE_CAP {
            let before = cfg.clone().with_thread_per_peer().run_on(&Tcp, None);
            let expected = n + 2 * n * (n - 1);
            if before.report.threads != expected {
                eprintln!(
                    "error: thread-per-peer n={n} ran {} threads, expected {expected}",
                    before.report.threads
                );
                std::process::exit(1);
            }
            scale_rows.push(scale_row("thread-per-peer", n, &before.report));
        }
        let after = cfg.clone().run_on(&Tcp, None);
        // The acceptance gate of the sweep: the reactor's thread count is
        // O(n) — the n node loops plus the fixed pool, nothing per-socket.
        if after.report.threads != n + DEFAULT_REACTOR_THREADS {
            eprintln!(
                "error: reactor n={n} ran {} threads, expected {}",
                after.report.threads,
                n + DEFAULT_REACTOR_THREADS
            );
            std::process::exit(1);
        }
        if after.report.tps <= 0.0 {
            eprintln!("error: reactor n={n} produced no throughput");
            std::process::exit(1);
        }
        scale_rows.push(scale_row("reactor", n, &after.report));
    }
    let scale_json = format!("[{}]", scale_rows.join(","));

    // The geo-latency profile (the `geo` key, PR 10): FLO on the TCP
    // runtime with the simulator's AWS inter-region latency matrix injected
    // through the delay-line interceptor — every pair of the 10 regions
    // gets its one-way latency as a constant link delay, so real sockets
    // experience the §7.5 geo topology. The open-loop probe stream gives
    // the row real submit→commit percentiles, which must clear the injected
    // one-way latencies by construction.
    let geo_matrix = fireledger_sim::GeoMatrix::aws_default();
    let geo_n = 10usize;
    let mut geo_plan = FaultPlan::named("geo-aws");
    for a in 0..geo_n as u32 {
        for b in (a + 1)..geo_n as u32 {
            let lat = geo_matrix.latency(NodeId(a), NodeId(b));
            geo_plan = geo_plan.delay(
                LinkSelector::Between(NodeId(a), NodeId(b)),
                FaultWindow::ALWAYS,
                lat,
                lat,
            );
        }
    }
    let geo_scenario = Scenario::new("geo-aws")
        .geo()
        .open_loop(50.0, 256)
        .run_for(if smoke {
            Duration::from_millis(1200)
        } else {
            Duration::from_millis(3000)
        })
        .with_warmup(Duration::ZERO)
        .with_seed(11)
        .with_faults(geo_plan);
    let geo_builder = ClusterBuilder::<FloCluster>::new(
        ProtocolParams::new(geo_n)
            .with_workers(1)
            .with_batch_size(50)
            .with_tx_size(256)
            .with_base_timeout(Duration::from_secs(1)),
    )
    .with_seed(11);
    let geo_report = Tcp.run(&geo_builder, &geo_scenario).expect("geo row (tcp)");
    if geo_report.tps <= 0.0 {
        eprintln!("error: geo row produced no throughput");
        std::process::exit(1);
    }
    println!(
        "geo       tcp      Flo | n={geo_n} threads={:>4} tps={:>9.0} p50={:.4}s p99={:.4}s",
        geo_report.threads,
        geo_report.tps,
        geo_report.p50_latency_secs,
        geo_report.p99_latency_secs,
    );
    let geo_json = format!(
        concat!(
            "{{\"system\":\"Flo\",\"runtime\":\"tcp\",\"n\":{},\"network\":\"geo-aws\",",
            "\"threads\":{},\"tps\":{:.2},\"bps\":{:.2},",
            "\"p50_latency_secs\":{:.6},\"p99_latency_secs\":{:.6},\"duration_secs\":{:.4}}}"
        ),
        geo_n,
        geo_report.threads,
        geo_report.tps,
        geo_report.bps,
        geo_report.p50_latency_secs,
        geo_report.p99_latency_secs,
        geo_report.duration_secs,
    );

    let point_rows: Vec<String> = points.iter().map(Point::to_json).collect();
    let run_json = format!(
        "{{\"label\":\"{label}\",\"mode\":\"{mode}\",\"points\":[{}],\"catch_up\":{catch_json},\"ingress\":{ingress_json},\"execution\":{execution_json},\"scale\":{scale_json},\"geo\":{geo_json}}}",
        point_rows.join(",")
    );
    println!("JSON: {run_json}");
    match append_run(&out_path, &run_json) {
        Ok(()) => println!("\nappended run '{label}' ({mode}) to {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
