//! Figure 15: FLO's delivery latency in the geo-distributed deployment,
//! σ = 512.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner(
        "Figure 15 — latency, multi data-center",
        "Figure 15, §7.5.2",
    );
    let omegas = if full_mode() {
        vec![1, 5, 10]
    } else {
        vec![1, 5]
    };
    for n in cluster_sizes() {
        for omega in &omegas {
            for beta in batch_sizes() {
                let r = ExperimentConfig::flo(n, *omega, beta, 512)
                    .geo()
                    .duration(Duration::from_millis(if full_mode() {
                        20_000
                    } else {
                        5_000
                    }))
                    .run();
                println!(
                    "fig15 n={n} ω={omega} β={beta}: avg={:.3}s p50={:.3}s p95={:.3}s",
                    r.report.avg_latency_secs, r.report.p50_latency_secs, r.report.p95_latency_secs
                );
                r.emit(&format!("fig15 n={n} ω={omega} β={beta}"));
            }
        }
    }
    println!("\nExpected shape (paper): seconds rather than milliseconds; for small blocks the cluster size");
    println!("matters little, for large blocks data dissemination dominates.");
}
