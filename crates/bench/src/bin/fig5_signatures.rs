//! Figure 5: signature generation rate (sps) on a single VM as a function of
//! the number of workers ω, batch size β and transaction size σ.

use fireledger_bench::*;
use fireledger_crypto::CostModel;

fn main() {
    banner("Figure 5 — signature generation rate", "Figure 5, §7.1");
    // Measured model of the real k256/sha2 implementations on this machine,
    // alongside the m5.xlarge model used by the simulator.
    let measured = CostModel::calibrate(64, 4);
    let modeled = CostModel::m5_xlarge();
    println!(
        "calibrated on this host: sign={:?} verify={:?} hash/byte={:?}",
        measured.sign, measured.verify, measured.hash_per_byte
    );
    println!(
        "{:>6} {:>6} {:>6} {:>14} {:>14}",
        "ω", "β", "σ", "sps(model)", "sps(host)"
    );
    for beta in batch_sizes() {
        for sigma in tx_sizes() {
            for omega in worker_sweep() {
                let payload = (beta * sigma) as u64;
                // ω workers share the VM's cores: the aggregate rate saturates
                // at the number of vCPUs (4 on m5.xlarge).
                let parallel = omega.min(modeled.cores) as f64;
                let sps_model = modeled.signature_rate(payload) * parallel;
                let sps_host = measured.signature_rate(payload) * omega.min(measured.cores) as f64;
                println!("{omega:>6} {beta:>6} {sigma:>6} {sps_model:>14.1} {sps_host:>14.1}");
                println!("JSON: {{\"figure\":5,\"omega\":{omega},\"beta\":{beta},\"sigma\":{sigma},\"sps_model\":{sps_model:.2},\"sps_host\":{sps_host:.2}}}");
            }
        }
    }
    println!("\nExpected shape (paper): smaller blocks sign faster; rate stops improving beyond ω = 4 (vCPUs);");
    println!("tps is bounded by sps · β.");
}
