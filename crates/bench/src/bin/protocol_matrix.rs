//! The full protocol × runtime matrix on a single scenario.
//!
//! One `Scenario` value drives all five protocols of the paper's evaluation
//! — FLO, a single WRB/OBBC instance, PBFT, HotStuff and BFT-SMaRt — first
//! deterministically on the discrete-event simulator and then on the
//! threaded real-time runtime, emitting the same `RunReport` schema for
//! every cell of the matrix.
//!
//! Run with: `cargo run -p fireledger-bench --bin protocol_matrix`

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Protocol × runtime matrix", "§7 experiment matrix");
    let duration = Duration::from_millis(if full_mode() { 2000 } else { 500 });
    for system in System::ALL {
        let cfg = ExperimentConfig::flo(4, 2, 10, 512)
            .system(system)
            .duration(duration);
        cfg.run_on(&Simulator, None).emit("matrix/sim");
        cfg.run_on(&Threads, None).emit("matrix/threads");
    }
    println!("\nEvery row above came from the same Scenario value; only the protocol and the");
    println!("runtime changed. The simulator rows additionally carry latency percentiles and");
    println!("message/signature counters, which the threaded runtime does not instrument.");
}
