//! The full protocol × runtime matrix on a single scenario.
//!
//! One `Scenario` value drives all five protocols of the paper's evaluation
//! — FLO, a single WRB/OBBC instance, PBFT, HotStuff and BFT-SMaRt — first
//! deterministically on the discrete-event simulator, then on the threaded
//! real-time runtime, then on the TCP runtime (real localhost sockets
//! speaking the binary wire format of `docs/WIRE_FORMAT.md`), emitting the
//! same `RunReport` schema for every cell of the matrix.
//!
//! After the matrix, every protocol's TCP run is checked for **ledger
//! identity** against a simulator run of the same scenario: each node's
//! delivered block sequence must be byte-for-byte the same ledger (prefix
//! equality — the runtimes cover different amounts of protocol time). A
//! divergence aborts the binary with a non-zero exit code, because it means
//! the wire format changed the protocol's behaviour.
//!
//! Run with: `cargo run -p fireledger-bench --bin protocol_matrix`

use fireledger_bench::*;
use std::time::Duration;

/// Runs `system` on the simulator and on TCP with generous timeouts (so no
/// spurious real-time timeout can alter the decision sequence) and checks
/// that both produced the same ledger.
fn check_ledger_identity(system: System) {
    let cfg = ExperimentConfig::flo(4, 2, 10, 512)
        .system(system)
        .ideal()
        .with_base_timeout(Duration::from_millis(250))
        .duration(Duration::from_millis(700));
    let (_, sim) = cfg.run_full_on(&Simulator, None);
    let (_, tcp) = cfg.run_full_on(&Tcp, None);
    match check_delivery_prefixes(&sim, &tcp) {
        Ok(blocks) => println!("identity {system:?}: sim == tcp over {blocks} delivered blocks"),
        Err(why) => panic!("ledger divergence between sim and tcp for {system:?}: {why}"),
    }
}

fn main() {
    banner("Protocol × runtime matrix", "§7 experiment matrix");
    let duration = Duration::from_millis(if full_mode() { 2000 } else { 500 });
    for system in System::ALL {
        let cfg = ExperimentConfig::flo(4, 2, 10, 512)
            .system(system)
            .duration(duration);
        cfg.run_on(&Simulator, None).emit("matrix/sim");
        cfg.run_on(&Threads, None).emit("matrix/threads");
        cfg.run_on(&Tcp, None).emit("matrix/tcp");
    }
    println!("\nEvery row above came from the same Scenario value; only the protocol and the");
    println!("runtime changed. The simulator rows additionally carry latency percentiles and");
    println!("message/signature counters, which the real-time runtimes do not instrument.");

    println!("\nLedger identity, simulator vs TCP (prefix equality per node):");
    for system in System::ALL {
        check_ledger_identity(system);
    }
}
