//! Figure 11: FLO's throughput while f nodes are crashed, σ = 512,
//! β ∈ {10, 100, 1000}, n ∈ {4, 7, 10} (f ∈ {1, 2, 3}).

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 11 — crash failures", "Figure 11, §7.4.1");
    for n in cluster_sizes() {
        let f = (n - 1) / 3;
        for beta in batch_sizes() {
            for omega in worker_sweep() {
                let r = ExperimentConfig::flo(n, omega, beta, 512)
                    .with_crashes(f)
                    .duration(Duration::from_millis(if full_mode() { 3000 } else { 800 }))
                    .run();
                r.emit(&format!("fig11 n={n} f={f} β={beta} ω={omega}"));
            }
        }
    }
    println!(
        "\nExpected shape (paper): lower than fault-free (the crashed proposers' turns need the"
    );
    println!("fallback), decreasing with n, but still tens of thousands of tps.");
}
