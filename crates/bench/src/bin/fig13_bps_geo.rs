//! Figure 13: FLO's blocks-per-second rate in the ten-region geo-distributed
//! deployment.

use fireledger_bench::*;
use std::time::Duration;

fn main() {
    banner("Figure 13 — bps, multi data-center", "Figure 13, §7.5.1");
    for n in cluster_sizes() {
        for omega in worker_sweep() {
            let r = ExperimentConfig::flo(n, omega, 100, 512)
                .geo()
                .duration(Duration::from_millis(if full_mode() {
                    20_000
                } else {
                    6_000
                }))
                .run();
            r.emit(&format!("fig13 n={n} ω={omega}"));
        }
    }
    println!("\nExpected shape (paper): bps is roughly an order of magnitude below the single data-center rate.");
}
