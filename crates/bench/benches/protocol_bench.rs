//! Benchmarks of the protocol hot paths: a simulated 100 ms of a FireLedger
//! cluster versus each baseline, through the unified runtime API.
//!
//! Run with: `cargo bench -p fireledger-bench --bench protocol_bench`

use fireledger_bench::quickbench::{bench_with_target, section};
use fireledger_bench::*;
use std::time::Duration;

fn main() {
    let scenario = Scenario::new("bench")
        .ideal()
        .run_for(Duration::from_millis(100));
    for n in [4usize, 7] {
        section(&format!("simulated 100 ms, n = {n}"));
        let params = ProtocolParams::new(n)
            .with_batch_size(10)
            .with_tx_size(256)
            .with_base_timeout(Duration::from_millis(20));
        let target = Duration::from_millis(400);
        bench_with_target(&format!("fireledger/{n}"), target, || {
            Simulator
                .run(
                    &ClusterBuilder::<FloCluster>::new(params.clone()),
                    &scenario,
                )
                .unwrap()
                .tps
        });
        bench_with_target(&format!("wrb_obbc/{n}"), target, || {
            Simulator
                .run(&ClusterBuilder::<Worker>::new(params.clone()), &scenario)
                .unwrap()
                .tps
        });
        bench_with_target(&format!("pbft/{n}"), target, || {
            Simulator
                .run(&ClusterBuilder::<PbftNode>::new(params.clone()), &scenario)
                .unwrap()
                .tps
        });
        bench_with_target(&format!("hotstuff/{n}"), target, || {
            Simulator
                .run(
                    &ClusterBuilder::<HotStuffNode>::new(params.clone()),
                    &scenario,
                )
                .unwrap()
                .tps
        });
        bench_with_target(&format!("bftsmart/{n}"), target, || {
            Simulator
                .run(
                    &ClusterBuilder::<BftSmartNode>::new(params.clone()),
                    &scenario,
                )
                .unwrap()
                .tps
        });
    }
}
