//! Criterion benchmarks of the protocol hot paths: a full simulated second of
//! a FireLedger cluster versus the HotStuff and BFT-SMaRt baselines, plus the
//! per-message handling cost of the worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fireledger::prelude::*;
use fireledger::build_cluster;
use fireledger_baselines::{BftSmartNode, HotStuffNode};
use fireledger_crypto::SimKeyStore;
use fireledger_sim::{SimConfig, Simulation};
use std::time::Duration;

fn bench_fireledger_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_100ms");
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_with_input(BenchmarkId::new("fireledger", n), &n, |b, &n| {
            b.iter(|| {
                let params = ProtocolParams::new(n)
                    .with_batch_size(10)
                    .with_tx_size(256)
                    .with_base_timeout(Duration::from_millis(20));
                let mut sim = Simulation::new(SimConfig::ideal(), build_cluster(&params, 1));
                sim.run_for(Duration::from_millis(100));
                sim.deliveries(NodeId(0)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("hotstuff", n), &n, |b, &n| {
            b.iter(|| {
                let params = ProtocolParams::new(n)
                    .with_batch_size(10)
                    .with_tx_size(256)
                    .with_base_timeout(Duration::from_millis(20));
                let crypto = SimKeyStore::generate(n, 1).shared();
                let nodes: Vec<HotStuffNode> = (0..n)
                    .map(|i| HotStuffNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
                    .collect();
                let mut sim = Simulation::new(SimConfig::ideal(), nodes);
                sim.run_for(Duration::from_millis(100));
                sim.deliveries(NodeId(0)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bftsmart", n), &n, |b, &n| {
            b.iter(|| {
                let params = ProtocolParams::new(n)
                    .with_batch_size(10)
                    .with_tx_size(256)
                    .with_base_timeout(Duration::from_millis(20));
                let crypto = SimKeyStore::generate(n, 1).shared();
                let nodes: Vec<BftSmartNode> = (0..n)
                    .map(|i| BftSmartNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
                    .collect();
                let mut sim = Simulation::new(SimConfig::ideal(), nodes);
                sim.run_for(Duration::from_millis(100));
                sim.deliveries(NodeId(0)).len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fireledger_round
}
criterion_main!(benches);
