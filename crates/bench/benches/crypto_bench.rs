//! Criterion micro-benchmarks of the cryptographic pipeline: block signing
//! (hash payload + ECDSA), verification and merkle construction. These are the
//! real-CPU counterpart of Figure 5's signature-rate experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fireledger_crypto::{hash_bytes, merkle_root, CryptoProvider, EcdsaKeyStore, SimKeyStore};
use fireledger_types::{NodeId, Transaction};

fn batch(beta: usize, sigma: usize) -> Vec<Transaction> {
    (0..beta).map(|i| Transaction::zeroed(0, i as u64, sigma)).collect()
}

fn bench_signing(c: &mut Criterion) {
    let ecdsa = EcdsaKeyStore::generate(1, 1);
    let sim = SimKeyStore::generate(1, 1);
    let mut group = c.benchmark_group("block_signing");
    for (beta, sigma) in [(10usize, 512usize), (100, 1024), (1000, 512)] {
        let txs = batch(beta, sigma);
        let root = merkle_root(&txs);
        group.throughput(Throughput::Bytes((beta * sigma) as u64));
        group.bench_with_input(
            BenchmarkId::new("ecdsa_sign", format!("b{beta}_s{sigma}")),
            &root,
            |b, root| b.iter(|| ecdsa.sign(NodeId(0), root.as_bytes())),
        );
        group.bench_with_input(
            BenchmarkId::new("sim_sign", format!("b{beta}_s{sigma}")),
            &root,
            |b, root| b.iter(|| sim.sign(NodeId(0), root.as_bytes())),
        );
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let ecdsa = EcdsaKeyStore::generate(1, 1);
    let msg = hash_bytes(b"fireledger header");
    let sig = ecdsa.sign(NodeId(0), msg.as_bytes());
    c.bench_function("ecdsa_verify", |b| {
        b.iter(|| ecdsa.verify(NodeId(0), msg.as_bytes(), &sig))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for (beta, sigma) in [(10usize, 512usize), (100, 512), (1000, 512)] {
        let txs = batch(beta, sigma);
        group.throughput(Throughput::Bytes((beta * sigma) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(beta), &txs, |b, txs| {
            b.iter(|| merkle_root(txs))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_signing, bench_verify, bench_merkle
}
criterion_main!(benches);
