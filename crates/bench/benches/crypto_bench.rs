//! Micro-benchmarks of the cryptographic pipeline: block signing (hash
//! payload + signature), verification and merkle construction. These are the
//! real-CPU counterpart of Figure 5's signature-rate experiment.
//!
//! Run with: `cargo bench -p fireledger-bench --bench crypto_bench`

use fireledger_bench::quickbench::{bench, section};
use fireledger_crypto::{hash_bytes, merkle_root, CryptoProvider, LamportKeyStore, SimKeyStore};
use fireledger_types::{NodeId, Transaction};

fn batch(beta: usize, sigma: usize) -> Vec<Transaction> {
    (0..beta)
        .map(|i| Transaction::zeroed(0, i as u64, sigma))
        .collect()
}

fn main() {
    let lamport = LamportKeyStore::generate(1, 1);
    let sim = SimKeyStore::generate(1, 1);

    section("block signing (merkle root as message)");
    for (beta, sigma) in [(10usize, 512usize), (100, 1024), (1000, 512)] {
        let txs = batch(beta, sigma);
        let root = merkle_root(&txs);
        bench(&format!("lamport_sign/b{beta}_s{sigma}"), || {
            lamport.sign(NodeId(0), root.as_bytes())
        });
        bench(&format!("sim_sign/b{beta}_s{sigma}"), || {
            sim.sign(NodeId(0), root.as_bytes())
        });
    }

    section("verification");
    let msg = hash_bytes(b"fireledger header");
    let lamport_sig = lamport.sign(NodeId(0), msg.as_bytes());
    let sim_sig = sim.sign(NodeId(0), msg.as_bytes());
    bench("lamport_verify", || {
        lamport.verify(NodeId(0), msg.as_bytes(), &lamport_sig)
    });
    bench("sim_verify", || {
        sim.verify(NodeId(0), msg.as_bytes(), &sim_sig)
    });

    section("hashing and merkle construction");
    for (beta, sigma) in [(10usize, 512usize), (100, 1024), (1000, 512)] {
        let txs = batch(beta, sigma);
        let payload = vec![0xAB; beta * sigma];
        bench(&format!("sha256/{}KiB", beta * sigma / 1024), || {
            hash_bytes(&payload)
        });
        bench(&format!("merkle_root/b{beta}_s{sigma}"), || {
            merkle_root(&txs)
        });
    }
}
