//! Micro-benchmarks of the chain store: extension validation, recovery
//! version validation and adoption.
//!
//! Run with: `cargo bench -p fireledger-bench --bench chain_bench`

use fireledger::chain::Chain;
use fireledger_bench::quickbench::{bench, section};
use fireledger_crypto::{merkle_root, CryptoProvider, SimKeyStore};
use fireledger_types::{
    BlockHeader, ClusterConfig, NodeId, Round, SignedHeader, Transaction, WorkerId,
};

fn grow_chain(chain: &mut Chain, crypto: &SimKeyStore, rounds: usize, n: usize) {
    for i in 0..rounds {
        let proposer = NodeId((i % n) as u32);
        let txs = vec![Transaction::zeroed(0, i as u64, 256)];
        let header = BlockHeader::new(
            chain.next_round(),
            WorkerId(0),
            proposer,
            chain.tip_hash(),
            merkle_root(&txs),
            txs.len() as u32,
            256,
        );
        let sig = crypto.sign(proposer, &header.canonical_bytes());
        chain.append(SignedHeader::new(header, sig), None);
        chain.finalize_deep_blocks();
    }
}

fn main() {
    let crypto = SimKeyStore::generate(10, 1);
    let cluster = ClusterConfig::new(10);

    for len in [100usize, 1000] {
        section(&format!("chain of {len} blocks"));
        let mut chain = Chain::new(cluster);
        grow_chain(&mut chain, &crypto, len, 10);
        let next = BlockHeader::new(
            chain.next_round(),
            WorkerId(0),
            NodeId((len % 10) as u32),
            chain.tip_hash(),
            fireledger_types::GENESIS_HASH,
            0,
            0,
        );
        let signed = SignedHeader::new(
            next.clone(),
            crypto.sign(next.proposer, &next.canonical_bytes()),
        );
        bench(&format!("validate_extension/{len}"), || {
            chain.validate_extension(&signed, &crypto).is_ok()
        });
        let base = Round((len as u64).saturating_sub(4));
        let version = chain.version_from(base);
        bench(&format!("validate_version/{len}"), || {
            chain.validate_version(base, &version, &crypto).is_ok()
        });
        bench(&format!("version_from/{len}"), || chain.version_from(base));
    }
}
