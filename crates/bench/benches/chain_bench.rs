//! Criterion benchmarks of the chain store: extension validation, recovery
//! version validation and adoption.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fireledger::chain::Chain;
use fireledger_crypto::{merkle_root, CryptoProvider, SimKeyStore};
use fireledger_types::{BlockHeader, ClusterConfig, NodeId, Round, SignedHeader, Transaction, WorkerId};

fn grow_chain(chain: &mut Chain, crypto: &SimKeyStore, rounds: usize, n: usize) {
    for i in 0..rounds {
        let proposer = NodeId((i % n) as u32);
        let txs = vec![Transaction::zeroed(0, i as u64, 256)];
        let header = BlockHeader::new(
            chain.next_round(),
            WorkerId(0),
            proposer,
            chain.tip_hash(),
            merkle_root(&txs),
            txs.len() as u32,
            256,
        );
        let sig = crypto.sign(proposer, &header.canonical_bytes());
        chain.append(SignedHeader::new(header, sig), None);
        chain.finalize_deep_blocks();
    }
}

fn bench_chain(c: &mut Criterion) {
    let crypto = SimKeyStore::generate(10, 1);
    let cluster = ClusterConfig::new(10);
    let mut group = c.benchmark_group("chain");
    for len in [100usize, 1000] {
        let mut chain = Chain::new(cluster);
        grow_chain(&mut chain, &crypto, len, 10);
        let next = BlockHeader::new(
            chain.next_round(),
            WorkerId(0),
            NodeId((len % 10) as u32),
            chain.tip_hash(),
            fireledger_types::GENESIS_HASH,
            0,
            0,
        );
        let signed = SignedHeader::new(next.clone(), crypto.sign(next.proposer, &next.canonical_bytes()));
        group.bench_with_input(BenchmarkId::new("validate_extension", len), &chain, |b, chain| {
            b.iter(|| chain.validate_extension(&signed, &crypto).is_ok())
        });
        let base = Round((len as u64).saturating_sub(4));
        let version = chain.version_from(base);
        group.bench_with_input(BenchmarkId::new("validate_version", len), &chain, |b, chain| {
            b.iter(|| chain.validate_version(base, &version, &crypto).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chain
}
criterion_main!(benches);
