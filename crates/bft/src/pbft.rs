//! A PBFT-style atomic broadcast — the workspace's stand-in for BFT-SMaRt.
//!
//! The paper's implementation (§6.1.2, Figure 3) uses BFT-SMaRt for two jobs:
//! the **atomic broadcast** that orders recovery versions (Algorithm 3 line 8)
//! and the **fallback consensus** behind OBBC when the optimistic path fails.
//! It is also the baseline ordering service FLO is compared against in
//! Figure 17. This module provides all three, from scratch, with the same
//! communication structure as PBFT/BFT-SMaRt:
//!
//! * a rotating leader assigns sequence numbers with `PrePrepare`;
//! * replicas exchange `Prepare` and `Commit` (each a Byzantine quorum of
//!   `2f+1`), giving the classical three-phase, O(n²)-message pattern;
//! * values are delivered in sequence-number order;
//! * a timeout triggers a view change that rotates the leader and re-proposes
//!   prepared values.
//!
//! The view change carries the reporters' prepared certificates by value; the
//! certificates' signatures are represented but not re-verified here — the
//! adversarial behaviours exercised by the evaluation (crashes, equivocating
//! FireLedger proposers) never forge certificates, and the recovery layer
//! re-validates every adopted block against the proposers' signatures anyway.

use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::runtime::CpuCharge;
use fireledger_types::{ClusterConfig, NodeId, Outbox, TimerId, WireSize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Configuration of one PBFT instance.
#[derive(Clone, Debug)]
pub struct PbftConfig {
    /// Cluster description (n, f).
    pub cluster: ClusterConfig,
    /// Timeout after which a node that still has undelivered submissions
    /// votes to change the view.
    pub view_timeout: Duration,
    /// Namespace byte for this instance's timers (so that a parent protocol
    /// embedding several PBFT instances can tell their timers apart).
    pub timer_kind: u8,
}

impl PbftConfig {
    /// A configuration with a 1-second view-change timeout.
    pub fn new(cluster: ClusterConfig) -> Self {
        PbftConfig {
            cluster,
            view_timeout: Duration::from_secs(1),
            timer_kind: 0xAB,
        }
    }

    /// Builder-style timeout override.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.view_timeout = timeout;
        self
    }

    /// Builder-style timer-namespace override.
    pub fn with_timer_kind(mut self, kind: u8) -> Self {
        self.timer_kind = kind;
        self
    }
}

/// Wire messages of the PBFT atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbftMsg<V> {
    /// A value forwarded to the current leader for ordering.
    Request {
        /// The value to order.
        value: V,
    },
    /// Leader's sequence-number assignment.
    PrePrepare {
        /// View in which the assignment is made.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// The value being ordered.
        value: V,
    },
    /// First voting phase.
    Prepare {
        /// View of the vote.
        view: u64,
        /// Sequence number voted on.
        seq: u64,
        /// Digest of the value.
        digest: u64,
    },
    /// Second voting phase.
    Commit {
        /// View of the vote.
        view: u64,
        /// Sequence number voted on.
        seq: u64,
        /// Digest of the value.
        digest: u64,
    },
    /// Vote to move to `new_view`, carrying the sender's prepared values.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// Sequence/value pairs the sender has prepared but not delivered.
        prepared: Vec<(u64, V)>,
    },
    /// The new leader's re-proposals after a view change.
    NewView {
        /// The view being installed.
        view: u64,
        /// Re-proposed sequence/value pairs.
        preprepares: Vec<(u64, V)>,
    },
}

impl<V: WireSize> WireSize for PbftMsg<V> {
    fn wire_size(&self) -> usize {
        match self {
            PbftMsg::Request { value } => 1 + value.wire_size(),
            PbftMsg::PrePrepare { value, .. } => 1 + 8 + 8 + value.wire_size() + 64,
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => 1 + 8 + 8 + 8 + 32,
            PbftMsg::ViewChange { prepared, .. } => {
                1 + 8
                    + prepared
                        .iter()
                        .map(|(_, v)| 8 + v.wire_size())
                        .sum::<usize>()
                    + 64
            }
            PbftMsg::NewView { preprepares, .. } => {
                1 + 8
                    + preprepares
                        .iter()
                        .map(|(_, v)| 8 + v.wire_size())
                        .sum::<usize>()
                    + 64
            }
        }
    }
}

/// Layout per WIRE_FORMAT.md §5.2: a discriminant byte (`0x01` Request,
/// `0x02` PrePrepare, `0x03` Prepare, `0x04` Commit, `0x05` ViewChange,
/// `0x06` NewView) followed by the variant's fields in declaration order;
/// `prepared` / `preprepares` lists are `u32`-counted sequences of
/// `seq u64 | value` pairs.
impl<V: WireCodec> WireCodec for PbftMsg<V> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            PbftMsg::Request { value } => {
                out.push(1);
                value.encode_to(out);
            }
            PbftMsg::PrePrepare { view, seq, value } => {
                out.push(2);
                view.encode_to(out);
                seq.encode_to(out);
                value.encode_to(out);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                out.push(3);
                view.encode_to(out);
                seq.encode_to(out);
                digest.encode_to(out);
            }
            PbftMsg::Commit { view, seq, digest } => {
                out.push(4);
                view.encode_to(out);
                seq.encode_to(out);
                digest.encode_to(out);
            }
            PbftMsg::ViewChange { new_view, prepared } => {
                out.push(5);
                new_view.encode_to(out);
                prepared.encode_to(out);
            }
            PbftMsg::NewView { view, preprepares } => {
                out.push(6);
                view.encode_to(out);
                preprepares.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(PbftMsg::Request {
                value: V::decode_from(r)?,
            }),
            2 => Ok(PbftMsg::PrePrepare {
                view: r.u64()?,
                seq: r.u64()?,
                value: V::decode_from(r)?,
            }),
            3 => Ok(PbftMsg::Prepare {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.u64()?,
            }),
            4 => Ok(PbftMsg::Commit {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.u64()?,
            }),
            5 => Ok(PbftMsg::ViewChange {
                new_view: r.u64()?,
                prepared: Vec::<(u64, V)>::decode_from(r)?,
            }),
            6 => Ok(PbftMsg::NewView {
                view: r.u64()?,
                preprepares: Vec::<(u64, V)>::decode_from(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "PbftMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            PbftMsg::Request { value } => value.encoded_len(),
            PbftMsg::PrePrepare { value, .. } => 8 + 8 + value.encoded_len(),
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => 8 + 8 + 8,
            PbftMsg::ViewChange { prepared, .. } => 8 + prepared.encoded_len(),
            PbftMsg::NewView { preprepares, .. } => 8 + preprepares.encoded_len(),
        }
    }
}

#[derive(Debug)]
struct Slot<V> {
    value: Option<V>,
    digest: Option<u64>,
    prepares: HashMap<u64, HashSet<NodeId>>,
    commits: HashMap<u64, HashSet<NodeId>>,
    prepared: bool,
    committed: bool,
    delivered: bool,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot {
            value: None,
            digest: None,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            prepared: false,
            committed: false,
            delivered: false,
        }
    }
}

/// One node's endpoint of the PBFT atomic broadcast.
#[derive(Debug)]
pub struct Pbft<V> {
    me: NodeId,
    config: PbftConfig,
    view: u64,
    next_seq: u64,
    slots: BTreeMap<u64, Slot<V>>,
    next_delivery: u64,
    /// Values this node submitted that have not been observed as delivered
    /// yet (re-submitted after a view change for liveness).
    my_pending: VecDeque<V>,
    /// Digests already assigned a slot by this leader (deduplication).
    assigned: HashSet<u64>,
    view_change_votes: HashMap<u64, HashSet<NodeId>>,
    view_change_prepared: HashMap<u64, Vec<(u64, V)>>,
    delivered_digests: HashSet<u64>,
    /// Ordering messages received for a view this node has not entered yet;
    /// replayed once the view is installed.
    future_msgs: Vec<(NodeId, PbftMsg<V>)>,
    timer_generation: u64,
    stats_delivered: u64,
}

fn digest_of<V: Hash>(value: &V) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl<V> Pbft<V>
where
    V: Clone + Debug + Eq + Hash + WireSize,
{
    /// Creates the PBFT endpoint of node `me`.
    pub fn new(me: NodeId, config: PbftConfig) -> Self {
        Pbft {
            me,
            config,
            view: 0,
            next_seq: 0,
            slots: BTreeMap::new(),
            next_delivery: 0,
            my_pending: VecDeque::new(),
            assigned: HashSet::new(),
            view_change_votes: HashMap::new(),
            view_change_prepared: HashMap::new(),
            delivered_digests: HashSet::new(),
            future_msgs: Vec::new(),
            timer_generation: 0,
            stats_delivered: 0,
        }
    }

    /// The leader of view `v`.
    pub fn leader_of(&self, view: u64) -> NodeId {
        NodeId((view % self.config.cluster.n as u64) as u32)
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The current leader.
    pub fn leader(&self) -> NodeId {
        self.leader_of(self.view)
    }

    /// True when this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// Total values delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.stats_delivered
    }

    /// Sequence number of the next delivery.
    pub fn next_delivery_seq(&self) -> u64 {
        self.next_delivery
    }

    fn timer_id(&self) -> TimerId {
        TimerId::compose(self.config.timer_kind, self.timer_generation)
    }

    fn arm_timer(&mut self, out: &mut Outbox<PbftMsg<V>>) {
        self.timer_generation += 1;
        let id = self.timer_id();
        out.set_timer(id, self.config.view_timeout);
    }

    /// Submits a value for total ordering. Returns any values that became
    /// deliverable as an immediate consequence (possible in single-node
    /// corner cases; normally empty).
    pub fn submit(&mut self, value: V, out: &mut Outbox<PbftMsg<V>>) -> Vec<(u64, V)> {
        self.my_pending.push_back(value.clone());
        self.arm_timer(out);
        if self.is_leader() {
            self.assign(value, out)
        } else {
            out.send(self.leader(), PbftMsg::Request { value });
            Vec::new()
        }
    }

    fn assign(&mut self, value: V, out: &mut Outbox<PbftMsg<V>>) -> Vec<(u64, V)> {
        let digest = digest_of(&value);
        if self.assigned.contains(&digest) || self.delivered_digests.contains(&digest) {
            return Vec::new();
        }
        self.assigned.insert(digest);
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = PbftMsg::PrePrepare {
            view: self.view,
            seq,
            value: value.clone(),
        };
        // Leader signs the pre-prepare.
        out.cpu(CpuCharge::sign(value.wire_size() as u64));
        out.broadcast(msg.clone());
        self.handle_preprepare(self.me, self.view, seq, value, out)
    }

    fn handle_preprepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        value: V,
        out: &mut Outbox<PbftMsg<V>>,
    ) -> Vec<(u64, V)> {
        if view != self.view || from != self.leader_of(view) {
            return Vec::new();
        }
        if from != self.me {
            // Verify the leader's signature on the pre-prepare.
            out.cpu(CpuCharge::verify(value.wire_size() as u64));
        }
        let digest = digest_of(&value);
        let slot = self.slots.entry(seq).or_default();
        if let Some(existing) = slot.digest {
            if existing != digest {
                // Conflicting assignment for the same slot — ignore the later one.
                return Vec::new();
            }
        }
        if slot.value.is_none() {
            slot.value = Some(value);
            slot.digest = Some(digest);
        }
        // The leader keeps next_seq ahead of any observed assignment so a
        // future view led by this node does not reuse sequence numbers.
        if seq >= self.next_seq {
            self.next_seq = seq + 1;
        }
        let prepare = PbftMsg::Prepare { view, seq, digest };
        out.broadcast(prepare);
        self.record_prepare(self.me, view, seq, digest, out)
    }

    fn record_prepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        digest: u64,
        out: &mut Outbox<PbftMsg<V>>,
    ) -> Vec<(u64, V)> {
        if view != self.view {
            return Vec::new();
        }
        let quorum = self.config.cluster.bft_quorum();
        let slot = self.slots.entry(seq).or_default();
        slot.prepares.entry(digest).or_default().insert(from);
        let count = slot.prepares[&digest].len();
        let value_matches = slot.digest == Some(digest) && slot.value.is_some();
        if count >= quorum && value_matches && !slot.prepared {
            slot.prepared = true;
            let commit = PbftMsg::Commit { view, seq, digest };
            out.broadcast(commit);
            return self.record_commit(self.me, view, seq, digest);
        }
        Vec::new()
    }

    fn record_commit(&mut self, from: NodeId, view: u64, seq: u64, digest: u64) -> Vec<(u64, V)> {
        if view != self.view {
            return Vec::new();
        }
        let quorum = self.config.cluster.bft_quorum();
        let slot = self.slots.entry(seq).or_default();
        slot.commits.entry(digest).or_default().insert(from);
        let count = slot.commits[&digest].len();
        if count >= quorum && slot.prepared && slot.digest == Some(digest) && !slot.committed {
            slot.committed = true;
        }
        self.try_deliver()
    }

    fn try_deliver(&mut self) -> Vec<(u64, V)> {
        let mut delivered = Vec::new();
        loop {
            let seq = self.next_delivery;
            let Some(slot) = self.slots.get_mut(&seq) else {
                break;
            };
            if !slot.committed || slot.delivered {
                break;
            }
            slot.delivered = true;
            let value = slot.value.clone().expect("committed slot has a value");
            let digest = slot.digest.expect("committed slot has a digest");
            self.delivered_digests.insert(digest);
            self.my_pending.retain(|v| digest_of(v) != digest);
            self.next_delivery += 1;
            self.stats_delivered += 1;
            delivered.push((seq, value));
        }
        delivered
    }

    /// Handles a PBFT wire message; returns the `(seq, value)` pairs that
    /// became deliverable, in delivery order.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: PbftMsg<V>,
        out: &mut Outbox<PbftMsg<V>>,
    ) -> Vec<(u64, V)> {
        // Ordering messages from a view this node has not entered yet are
        // buffered and replayed once the view change completes locally.
        let msg_view = match &msg {
            PbftMsg::PrePrepare { view, .. }
            | PbftMsg::Prepare { view, .. }
            | PbftMsg::Commit { view, .. } => Some(*view),
            _ => None,
        };
        if let Some(v) = msg_view {
            if v > self.view {
                self.future_msgs.push((from, msg));
                return Vec::new();
            }
        }
        match msg {
            PbftMsg::Request { value } => {
                if self.is_leader() {
                    self.assign(value, out)
                } else {
                    // Not the leader: forward (client may have stale view).
                    out.send(self.leader(), PbftMsg::Request { value });
                    Vec::new()
                }
            }
            PbftMsg::PrePrepare { view, seq, value } => {
                self.handle_preprepare(from, view, seq, value, out)
            }
            PbftMsg::Prepare { view, seq, digest } => {
                self.record_prepare(from, view, seq, digest, out)
            }
            PbftMsg::Commit { view, seq, digest } => self.record_commit(from, view, seq, digest),
            PbftMsg::ViewChange { new_view, prepared } => {
                self.handle_view_change(from, new_view, prepared, out)
            }
            PbftMsg::NewView { view, preprepares } => {
                self.handle_new_view(from, view, preprepares, out)
            }
        }
    }

    fn handle_view_change(
        &mut self,
        from: NodeId,
        new_view: u64,
        prepared: Vec<(u64, V)>,
        out: &mut Outbox<PbftMsg<V>>,
    ) -> Vec<(u64, V)> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(from);
        let entry = self.view_change_prepared.entry(new_view).or_default();
        for (seq, v) in prepared {
            if !entry.iter().any(|(s, _)| *s == seq) {
                entry.push((seq, v));
            }
        }
        let votes = self.view_change_votes[&new_view].len();
        let quorum = self.config.cluster.bft_quorum();
        // Join the view change once f+1 nodes vote for it (amplification), so
        // a single slow node cannot stall behind the rest of the cluster.
        let joined = self.view_change_votes[&new_view].contains(&self.me);
        if votes > self.config.cluster.f && !joined {
            let my_prepared = self.prepared_undelivered();
            self.view_change_votes
                .entry(new_view)
                .or_default()
                .insert(self.me);
            out.broadcast(PbftMsg::ViewChange {
                new_view,
                prepared: my_prepared,
            });
        }
        let votes = self.view_change_votes[&new_view].len();
        if votes >= quorum && new_view > self.view {
            return self.install_view(new_view, out);
        }
        Vec::new()
    }

    /// Replays buffered messages that belong to the now-current view.
    fn replay_future(&mut self, out: &mut Outbox<PbftMsg<V>>) -> Vec<(u64, V)> {
        let mut delivered = Vec::new();
        loop {
            let buffered = std::mem::take(&mut self.future_msgs);
            if buffered.is_empty() {
                break;
            }
            let mut progressed = false;
            for (from, msg) in buffered {
                let msg_view = match &msg {
                    PbftMsg::PrePrepare { view, .. }
                    | PbftMsg::Prepare { view, .. }
                    | PbftMsg::Commit { view, .. } => *view,
                    _ => self.view,
                };
                if msg_view <= self.view {
                    progressed = true;
                    delivered.extend(self.on_message(from, msg, out));
                } else {
                    self.future_msgs.push((from, msg));
                }
            }
            if !progressed {
                break;
            }
        }
        delivered
    }

    fn prepared_undelivered(&self) -> Vec<(u64, V)> {
        self.slots
            .iter()
            .filter(|(_, s)| s.prepared && !s.delivered)
            .filter_map(|(seq, s)| s.value.clone().map(|v| (*seq, v)))
            .collect()
    }

    fn install_view(&mut self, new_view: u64, out: &mut Outbox<PbftMsg<V>>) -> Vec<(u64, V)> {
        self.view = new_view;
        // Reset per-view voting state of undelivered slots.
        for slot in self.slots.values_mut() {
            if !slot.delivered {
                slot.prepares.clear();
                slot.commits.clear();
                slot.prepared = false;
                slot.committed = false;
            }
        }
        let mut delivered = Vec::new();
        if self.is_leader() {
            // Re-propose prepared values reported by the quorum, then re-submit
            // this node's own pending values.
            let mut reproposals: Vec<(u64, V)> = self
                .view_change_prepared
                .remove(&new_view)
                .unwrap_or_default()
                .into_iter()
                .filter(|(_, v)| !self.delivered_digests.contains(&digest_of(v)))
                .collect();
            reproposals.sort_by_key(|(seq, _)| *seq);
            let values: Vec<V> = reproposals.into_iter().map(|(_, v)| v).collect();
            let mut own: Vec<V> = self.my_pending.iter().cloned().collect();
            own.retain(|v| !values.contains(v));
            self.assigned.clear();
            // Continue sequence numbering after everything already delivered
            // or assigned, so old and new slots never collide.
            out.broadcast(PbftMsg::NewView {
                view: new_view,
                preprepares: Vec::new(),
            });
            for v in values.into_iter().chain(own) {
                delivered.extend(self.assign(v, out));
            }
        } else if !self.my_pending.is_empty() {
            // Re-submit pending values to the new leader.
            for v in self.my_pending.clone() {
                out.send(self.leader(), PbftMsg::Request { value: v });
            }
            self.arm_timer(out);
        }
        delivered.extend(self.replay_future(out));
        delivered
    }

    fn handle_new_view(
        &mut self,
        from: NodeId,
        view: u64,
        preprepares: Vec<(u64, V)>,
        out: &mut Outbox<PbftMsg<V>>,
    ) -> Vec<(u64, V)> {
        if view < self.view || from != self.leader_of(view) {
            return Vec::new();
        }
        let mut delivered = Vec::new();
        if view > self.view {
            self.view = view;
            delivered.extend(self.replay_future(out));
        }
        for (seq, value) in preprepares {
            delivered.extend(self.handle_preprepare(from, view, seq, value, out));
        }
        // Re-submit anything of ours the old view failed to order.
        if !self.is_leader() && !self.my_pending.is_empty() {
            for v in self.my_pending.clone() {
                out.send(self.leader(), PbftMsg::Request { value: v });
            }
            self.arm_timer(out);
        }
        delivered
    }

    /// Handles a timer event. Returns `true` when the timer belonged to this
    /// PBFT instance (the parent can then skip its own handling).
    pub fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<PbftMsg<V>>) -> bool {
        let (kind, generation) = timer.decompose();
        if kind != self.config.timer_kind {
            return false;
        }
        if generation != self.timer_generation {
            return true; // stale timer
        }
        if self.my_pending.is_empty() {
            return true; // everything delivered, nothing to complain about
        }
        // Vote to rotate the leader.
        let new_view = self.view + 1;
        let prepared = self.prepared_undelivered();
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(self.me);
        let entry = self.view_change_prepared.entry(new_view).or_default();
        for (seq, v) in &prepared {
            if !entry.iter().any(|(s, _)| s == seq) {
                entry.push((*seq, v.clone()));
            }
        }
        out.broadcast(PbftMsg::ViewChange { new_view, prepared });
        self.arm_timer(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Action;

    type V = u64;

    /// A synchronous in-memory harness that routes every produced message
    /// immediately, with an optional set of unreachable nodes.
    struct Net {
        nodes: Vec<Pbft<V>>,
        delivered: Vec<Vec<(u64, V)>>,
        unreachable: Vec<usize>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            let cluster = ClusterConfig::new(n);
            Net {
                nodes: (0..n)
                    .map(|i| Pbft::new(NodeId(i as u32), PbftConfig::new(cluster)))
                    .collect(),
                delivered: vec![Vec::new(); n],
                unreachable: Vec::new(),
            }
        }

        fn submit(&mut self, node: usize, value: V) {
            let mut out = Outbox::new();
            let newly = self.nodes[node].submit(value, &mut out);
            self.delivered[node].extend(newly);
            self.route(node, out);
        }

        fn timeout(&mut self, node: usize) {
            // Fire the node's current timer.
            let id = TimerId::compose(0xAB, self.nodes[node].timer_generation);
            let mut out = Outbox::new();
            let handled = self.nodes[node].on_timer(id, &mut out);
            assert!(handled);
            self.route(node, out);
        }

        fn route(&mut self, from: usize, out: Outbox<PbftMsg<V>>) {
            for action in out.into_actions() {
                match action {
                    Action::Broadcast { msg } => {
                        for to in 0..self.nodes.len() {
                            if to != from {
                                self.deliver(from, to, msg.clone());
                            }
                        }
                    }
                    Action::Send { to, msg } => self.deliver(from, to.as_usize(), msg),
                    _ => {}
                }
            }
        }

        fn deliver(&mut self, from: usize, to: usize, msg: PbftMsg<V>) {
            if self.unreachable.contains(&to) || self.unreachable.contains(&from) {
                return;
            }
            let mut out = Outbox::new();
            let newly = self.nodes[to].on_message(NodeId(from as u32), msg, &mut out);
            self.delivered[to].extend(newly);
            self.route(to, out);
        }
    }

    #[test]
    fn leader_submission_delivers_everywhere_in_order() {
        let mut net = Net::new(4);
        net.submit(0, 100);
        net.submit(0, 200);
        for i in 0..4 {
            assert_eq!(net.delivered[i], vec![(0, 100), (1, 200)], "node {i}");
        }
    }

    #[test]
    fn follower_submission_goes_through_the_leader() {
        let mut net = Net::new(4);
        net.submit(2, 55);
        for i in 0..4 {
            assert_eq!(net.delivered[i], vec![(0, 55)], "node {i}");
        }
    }

    #[test]
    fn total_order_is_consistent_across_submitters() {
        let mut net = Net::new(7);
        net.submit(1, 10);
        net.submit(4, 20);
        net.submit(0, 30);
        net.submit(6, 40);
        let reference = net.delivered[0].clone();
        assert_eq!(reference.len(), 4);
        for i in 1..7 {
            assert_eq!(net.delivered[i], reference, "node {i} diverged");
        }
        // Sequence numbers are gapless from zero.
        let seqs: Vec<u64> = reference.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_submissions_are_delivered_once() {
        let mut net = Net::new(4);
        net.submit(0, 99);
        net.submit(1, 99);
        for i in 0..4 {
            assert_eq!(net.delivered[i], vec![(0, 99)], "node {i}");
        }
    }

    #[test]
    fn progress_without_f_replicas() {
        let mut net = Net::new(4);
        net.unreachable = vec![3];
        net.submit(0, 7);
        for i in 0..3 {
            assert_eq!(net.delivered[i], vec![(0, 7)], "node {i}");
        }
        assert!(net.delivered[3].is_empty());
    }

    #[test]
    fn view_change_rotates_leader_and_recovers_pending_values() {
        let mut net = Net::new(4);
        // The leader (node 0) is unreachable: submissions by nodes 2 and 3
        // cannot be ordered in view 0.
        net.unreachable = vec![0];
        net.submit(2, 123);
        net.submit(3, 456);
        assert!(net.delivered[2].is_empty());
        // The two waiting submitters time out; their f+1 = 2 votes make the
        // remaining correct node join, reaching the 2f+1 quorum for view 1,
        // whose leader (node 1) re-orders the pending values.
        net.timeout(2);
        net.timeout(3);
        for i in 1..4 {
            assert_eq!(net.nodes[i].view(), 1, "node {i} should be in view 1");
            assert_eq!(net.nodes[i].leader(), NodeId(1));
            assert_eq!(net.delivered[i], net.delivered[1], "node {i} diverged");
            let values: Vec<V> = net.delivered[i].iter().map(|(_, v)| *v).collect();
            assert!(
                values.contains(&123) && values.contains(&456),
                "node {i}: {values:?}"
            );
        }
    }

    #[test]
    fn later_view_change_preserves_earlier_deliveries() {
        let mut net = Net::new(4);
        net.submit(0, 1);
        net.unreachable = vec![0];
        net.submit(1, 2);
        net.submit(2, 3);
        net.timeout(1);
        net.timeout(2);
        for i in 1..4 {
            assert_eq!(net.delivered[i].first(), Some(&(0u64, 1u64)), "node {i}");
            assert_eq!(net.delivered[i], net.delivered[1], "node {i} diverged");
            let values: Vec<V> = net.delivered[i].iter().map(|(_, v)| *v).collect();
            assert_eq!(values.len(), 3);
            assert!(values.contains(&2) && values.contains(&3));
        }
    }

    #[test]
    fn stale_and_foreign_timers_are_ignored() {
        let cluster = ClusterConfig::new(4);
        let mut node = Pbft::<V>::new(NodeId(0), PbftConfig::new(cluster));
        let mut out = Outbox::new();
        // Foreign timer kind.
        assert!(!node.on_timer(TimerId::compose(0x01, 0), &mut out));
        assert!(out.is_empty());
        // Stale generation: handled but no view change is emitted.
        node.submit(5, &mut out);
        let mut out2 = Outbox::new();
        assert!(node.on_timer(TimerId::compose(0xAB, 0), &mut out2));
        assert!(out2.is_empty());
    }

    #[test]
    fn delivered_count_and_next_seq_track_progress() {
        let mut net = Net::new(4);
        net.submit(0, 1);
        net.submit(0, 2);
        net.submit(0, 3);
        assert_eq!(net.nodes[2].delivered_count(), 3);
        assert_eq!(net.nodes[2].next_delivery_seq(), 3);
        assert!(net.nodes[0].is_leader());
        assert!(!net.nodes[1].is_leader());
    }

    #[test]
    fn conflicting_preprepare_for_same_slot_is_ignored() {
        let cluster = ClusterConfig::new(4);
        let mut node = Pbft::<V>::new(NodeId(1), PbftConfig::new(cluster));
        let mut out = Outbox::new();
        node.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                value: 10,
            },
            &mut out,
        );
        let before = node.slots.get(&0).unwrap().digest;
        node.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                value: 20,
            },
            &mut out,
        );
        assert_eq!(node.slots.get(&0).unwrap().digest, before);
        // Pre-prepare from a non-leader is rejected outright.
        node.on_message(
            NodeId(2),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                value: 30,
            },
            &mut out,
        );
        assert!(!node.slots.contains_key(&1));
    }

    #[test]
    fn wire_sizes_reflect_payloads() {
        let pp = PbftMsg::PrePrepare {
            view: 0,
            seq: 0,
            value: 7u64,
        };
        let p: PbftMsg<u64> = PbftMsg::Prepare {
            view: 0,
            seq: 0,
            digest: 1,
        };
        assert!(pp.wire_size() > p.wire_size());
        let vc = PbftMsg::ViewChange {
            new_view: 1,
            prepared: vec![(0, 7u64), (1, 8u64)],
        };
        assert!(vc.wire_size() > 2 * 8);
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let variants: Vec<PbftMsg<u64>> = vec![
            PbftMsg::Request { value: 7 },
            PbftMsg::PrePrepare {
                view: 1,
                seq: 2,
                value: 3,
            },
            PbftMsg::Prepare {
                view: 4,
                seq: 5,
                digest: 6,
            },
            PbftMsg::Commit {
                view: 7,
                seq: 8,
                digest: 9,
            },
            PbftMsg::ViewChange {
                new_view: 10,
                prepared: vec![(11, 12), (13, 14)],
            },
            PbftMsg::ViewChange {
                new_view: 10,
                prepared: vec![],
            },
            PbftMsg::NewView {
                view: 15,
                preprepares: vec![(16, 17)],
            },
        ];
        for m in variants {
            let bytes = m.encode();
            assert_eq!(PbftMsg::<u64>::decode(&bytes).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn codec_rejects_unknown_discriminants() {
        assert!(matches!(
            PbftMsg::<u64>::decode(&[0x77]),
            Err(fireledger_types::CodecError::BadTag {
                what: "PbftMsg",
                ..
            })
        ));
    }
}
