//! Bracha-style Reliable Broadcast.
//!
//! FireLedger uses reliable broadcast to disseminate proofs of Byzantine
//! behaviour: when a node detects a chain inconsistency, it RB-broadcasts the
//! signed conflicting headers (Algorithm 2, lines b6–b7) so that every correct
//! node eventually joins the recovery procedure (lines b12–b14).
//!
//! The implementation is the classical echo/ready protocol of Bracha
//! (Asynchronous Byzantine Agreement Protocols, 1987), which provides the
//! RB-Validity / RB-Agreement / RB-Termination properties of §3.2 for
//! `f < n/3`:
//!
//! 1. the sender broadcasts `Init(v)`;
//! 2. on the first `Init(v)` from that sender, a node broadcasts `Echo(v)`;
//! 3. on `2f+1` `Echo(v)` (or `f+1` `Ready(v)`), a node broadcasts `Ready(v)`;
//! 4. on `2f+1` `Ready(v)`, a node delivers `v`.

use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::{ClusterConfig, NodeId, Outbox, WireSize};
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// Wire messages of the reliable-broadcast protocol.
///
/// `origin` is the node whose broadcast this message belongs to and `tag` is
/// the origin's local sequence number for it; together they name one RB
/// instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbMsg<V> {
    /// The origin's initial dissemination of `value`.
    Init {
        /// Broadcast instance: the broadcasting node.
        origin: NodeId,
        /// Broadcast instance: the origin's sequence number.
        tag: u64,
        /// The broadcast payload.
        value: V,
    },
    /// Second-phase echo of `value`.
    Echo {
        /// Broadcast instance: the broadcasting node.
        origin: NodeId,
        /// Broadcast instance: the origin's sequence number.
        tag: u64,
        /// The echoed payload.
        value: V,
    },
    /// Third-phase ready message for `value`.
    Ready {
        /// Broadcast instance: the broadcasting node.
        origin: NodeId,
        /// Broadcast instance: the origin's sequence number.
        tag: u64,
        /// The payload the sender is ready to deliver.
        value: V,
    },
}

impl<V: WireSize> WireSize for RbMsg<V> {
    fn wire_size(&self) -> usize {
        let payload = match self {
            RbMsg::Init { value, .. } | RbMsg::Echo { value, .. } | RbMsg::Ready { value, .. } => {
                value.wire_size()
            }
        };
        // origin + tag + variant tag + payload
        4 + 8 + 1 + payload
    }
}

/// Layout per WIRE_FORMAT.md §5.1: a discriminant byte (`0x01` Init, `0x02`
/// Echo, `0x03` Ready) followed by `origin u32 | tag u64 | value`.
impl<V: WireCodec> WireCodec for RbMsg<V> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        let (disc, origin, tag, value) = match self {
            RbMsg::Init { origin, tag, value } => (1u8, origin, tag, value),
            RbMsg::Echo { origin, tag, value } => (2, origin, tag, value),
            RbMsg::Ready { origin, tag, value } => (3, origin, tag, value),
        };
        out.push(disc);
        origin.encode_to(out);
        tag.encode_to(out);
        value.encode_to(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let disc = r.u8()?;
        if !(1..=3).contains(&disc) {
            return Err(CodecError::BadTag {
                what: "RbMsg",
                tag: disc,
            });
        }
        let origin = NodeId::decode_from(r)?;
        let tag = r.u64()?;
        let value = V::decode_from(r)?;
        Ok(match disc {
            1 => RbMsg::Init { origin, tag, value },
            2 => RbMsg::Echo { origin, tag, value },
            _ => RbMsg::Ready { origin, tag, value },
        })
    }

    fn encoded_len(&self) -> usize {
        let value = match self {
            RbMsg::Init { value, .. } | RbMsg::Echo { value, .. } | RbMsg::Ready { value, .. } => {
                value
            }
        };
        // discriminant + origin + tag + value
        1 + 4 + 8 + value.encoded_len()
    }
}

#[derive(Debug)]
struct RbInstance<V> {
    echoed: bool,
    readied: bool,
    delivered: bool,
    echoes: HashMap<V, HashSet<NodeId>>,
    readies: HashMap<V, HashSet<NodeId>>,
}

impl<V> Default for RbInstance<V> {
    fn default() -> Self {
        RbInstance {
            echoed: false,
            readied: false,
            delivered: false,
            echoes: HashMap::new(),
            readies: HashMap::new(),
        }
    }
}

/// The reliable-broadcast service of one node, multiplexing any number of
/// concurrent broadcast instances.
#[derive(Debug)]
pub struct ReliableBroadcast<V> {
    me: NodeId,
    cluster: ClusterConfig,
    next_tag: u64,
    instances: HashMap<(NodeId, u64), RbInstance<V>>,
}

impl<V> ReliableBroadcast<V>
where
    V: Clone + Eq + Hash + Debug,
{
    /// Creates the RB endpoint of node `me` in `cluster`.
    pub fn new(me: NodeId, cluster: ClusterConfig) -> Self {
        ReliableBroadcast {
            me,
            cluster,
            next_tag: 0,
            instances: HashMap::new(),
        }
    }

    /// Starts a new broadcast of `value` and returns its tag. The local node
    /// delivers its own broadcast through the normal echo/ready path.
    pub fn broadcast(&mut self, value: V, out: &mut Outbox<RbMsg<V>>) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        let init = RbMsg::Init {
            origin: self.me,
            tag,
            value: value.clone(),
        };
        out.broadcast(init.clone());
        // Process our own init locally (we do not send to ourselves).
        let mut delivered = self.on_message(self.me, init, out);
        debug_assert!(delivered.is_empty() || delivered.len() == 1);
        let _ = delivered.pop();
        tag
    }

    /// Handles an RB wire message from `from`; returns the broadcasts
    /// (origin, tag, value) that became deliverable as a result.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: RbMsg<V>,
        out: &mut Outbox<RbMsg<V>>,
    ) -> Vec<(NodeId, u64, V)> {
        let quorum = self.cluster.bft_quorum();
        let ready_amplify = self.cluster.f + 1;
        let mut delivered = Vec::new();
        match msg {
            RbMsg::Init { origin, tag, value } => {
                // Only the origin itself may initiate its own broadcast.
                if from != origin {
                    return delivered;
                }
                let inst = self.instances.entry((origin, tag)).or_default();
                if !inst.echoed {
                    inst.echoed = true;
                    let echo = RbMsg::Echo {
                        origin,
                        tag,
                        value: value.clone(),
                    };
                    out.broadcast(echo.clone());
                    // Count our own echo.
                    delivered.extend(self.on_message(self.me, echo, out));
                }
            }
            RbMsg::Echo { origin, tag, value } => {
                let inst = self.instances.entry((origin, tag)).or_default();
                let votes = inst.echoes.entry(value.clone()).or_default();
                votes.insert(from);
                let count = votes.len();
                if count >= quorum && !inst.readied {
                    inst.readied = true;
                    let ready = RbMsg::Ready {
                        origin,
                        tag,
                        value: value.clone(),
                    };
                    out.broadcast(ready.clone());
                    delivered.extend(self.on_message(self.me, ready, out));
                }
            }
            RbMsg::Ready { origin, tag, value } => {
                let inst = self.instances.entry((origin, tag)).or_default();
                let votes = inst.readies.entry(value.clone()).or_default();
                votes.insert(from);
                let count = votes.len();
                if count >= ready_amplify && !inst.readied {
                    inst.readied = true;
                    let ready = RbMsg::Ready {
                        origin,
                        tag,
                        value: value.clone(),
                    };
                    out.broadcast(ready.clone());
                    delivered.extend(self.on_message(self.me, ready, out));
                    // Re-read the instance after recursion.
                }
                let inst = self.instances.entry((origin, tag)).or_default();
                let count = inst.readies.get(&value).map_or(0, |s| s.len());
                if count >= quorum && !inst.delivered {
                    inst.delivered = true;
                    delivered.push((origin, tag, value));
                }
            }
        }
        delivered
    }

    /// True when the broadcast `(origin, tag)` has been delivered locally.
    pub fn is_delivered(&self, origin: NodeId, tag: u64) -> bool {
        self.instances
            .get(&(origin, tag))
            .is_some_and(|i| i.delivered)
    }

    /// Number of RB instances this endpoint is tracking.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Action;

    type Payload = u64;

    struct Net {
        nodes: Vec<ReliableBroadcast<Payload>>,
        delivered: Vec<Vec<(NodeId, u64, Payload)>>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            let cluster = ClusterConfig::new(n);
            Net {
                nodes: (0..n)
                    .map(|i| ReliableBroadcast::new(NodeId(i as u32), cluster))
                    .collect(),
                delivered: vec![Vec::new(); n],
            }
        }

        /// Applies a closure to node `i`, then synchronously routes all the
        /// produced messages (optionally dropping messages to some nodes).
        fn run<F>(&mut self, i: usize, f: F, unreachable: &[usize])
        where
            F: FnOnce(
                &mut ReliableBroadcast<Payload>,
                &mut Outbox<RbMsg<Payload>>,
            ) -> Vec<(NodeId, u64, Payload)>,
        {
            let mut out = Outbox::new();
            let newly = f(&mut self.nodes[i], &mut out);
            self.delivered[i].extend(newly);
            let actions = out.into_actions();
            for action in actions {
                match action {
                    Action::Broadcast { msg } => {
                        for j in 0..self.nodes.len() {
                            if j != i && !unreachable.contains(&j) {
                                self.deliver(i, j, msg.clone(), unreachable);
                            }
                        }
                    }
                    Action::Send { to, msg } if !unreachable.contains(&to.as_usize()) => {
                        self.deliver(i, to.as_usize(), msg, unreachable);
                    }
                    _ => {}
                }
            }
        }

        fn deliver(&mut self, from: usize, to: usize, msg: RbMsg<Payload>, unreachable: &[usize]) {
            self.run(
                to,
                |node, out| node.on_message(NodeId(from as u32), msg, out),
                unreachable,
            );
        }
    }

    #[test]
    fn broadcast_delivers_at_all_correct_nodes() {
        let mut net = Net::new(4);
        net.run(
            0,
            |node, out| {
                node.broadcast(42, out);
                Vec::new()
            },
            &[],
        );
        for i in 0..4 {
            assert_eq!(net.delivered[i], vec![(NodeId(0), 0, 42)], "node {i}");
            assert!(net.nodes[i].is_delivered(NodeId(0), 0));
        }
    }

    #[test]
    fn delivery_with_one_unreachable_node() {
        // f = 1 for n = 4: the protocol must terminate at the 3 reachable nodes.
        let mut net = Net::new(4);
        net.run(
            0,
            |node, out| {
                node.broadcast(7, out);
                Vec::new()
            },
            &[3],
        );
        for i in 0..3 {
            assert_eq!(net.delivered[i], vec![(NodeId(0), 0, 7)], "node {i}");
        }
        assert!(net.delivered[3].is_empty());
    }

    #[test]
    fn concurrent_broadcasts_are_independent() {
        let mut net = Net::new(7);
        net.run(
            0,
            |node, out| {
                node.broadcast(1, out);
                Vec::new()
            },
            &[],
        );
        net.run(
            5,
            |node, out| {
                node.broadcast(2, out);
                Vec::new()
            },
            &[],
        );
        net.run(
            0,
            |node, out| {
                node.broadcast(3, out);
                Vec::new()
            },
            &[],
        );
        for i in 0..7 {
            let got: HashSet<_> = net.delivered[i].iter().cloned().collect();
            assert!(got.contains(&(NodeId(0), 0, 1)));
            assert!(got.contains(&(NodeId(5), 0, 2)));
            assert!(got.contains(&(NodeId(0), 1, 3)));
            assert_eq!(got.len(), 3);
        }
    }

    #[test]
    fn init_spoofing_is_ignored() {
        // A node relaying an Init that claims a different origin is ignored.
        let mut rb = ReliableBroadcast::<Payload>::new(NodeId(1), ClusterConfig::new(4));
        let mut out = Outbox::new();
        let delivered = rb.on_message(
            NodeId(2),
            RbMsg::Init {
                origin: NodeId(0),
                tag: 0,
                value: 9,
            },
            &mut out,
        );
        assert!(delivered.is_empty());
        assert!(out.is_empty(), "spoofed init must not trigger an echo");
    }

    #[test]
    fn no_delivery_without_quorum_of_readies() {
        let cluster = ClusterConfig::new(4);
        let mut rb = ReliableBroadcast::<Payload>::new(NodeId(0), cluster);
        let mut out = Outbox::new();
        // Two Ready messages (below the 2f+1 = 3 quorum) do not deliver, but do
        // trigger ready amplification (f+1 = 2).
        let d1 = rb.on_message(
            NodeId(1),
            RbMsg::Ready {
                origin: NodeId(2),
                tag: 0,
                value: 5,
            },
            &mut out,
        );
        assert!(d1.is_empty());
        let d2 = rb.on_message(
            NodeId(2),
            RbMsg::Ready {
                origin: NodeId(2),
                tag: 0,
                value: 5,
            },
            &mut out,
        );
        // After amplification our own ready counts as the third — delivery happens.
        assert_eq!(d2, vec![(NodeId(2), 0, 5)]);
    }

    #[test]
    fn equivocating_origin_does_not_deliver_two_values() {
        // Origin 0 sends Init(1) to node 1 and Init(2) to node 2: echo counts
        // split and neither value can reach a ready quorum with only 4 nodes,
        // or at most one of them can — never both.
        let mut net = Net::new(4);
        // Hand-deliver conflicting inits.
        net.deliver(
            0,
            1,
            RbMsg::Init {
                origin: NodeId(0),
                tag: 0,
                value: 1,
            },
            &[],
        );
        net.deliver(
            0,
            2,
            RbMsg::Init {
                origin: NodeId(0),
                tag: 0,
                value: 2,
            },
            &[],
        );
        net.deliver(
            0,
            3,
            RbMsg::Init {
                origin: NodeId(0),
                tag: 0,
                value: 1,
            },
            &[],
        );
        let values_delivered: HashSet<Payload> =
            net.delivered.iter().flatten().map(|(_, _, v)| *v).collect();
        assert!(
            values_delivered.len() <= 1,
            "agreement violated: {values_delivered:?}"
        );
        assert!(!values_delivered.contains(&2));
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        let m = RbMsg::Init {
            origin: NodeId(0),
            tag: 0,
            value: 7u64,
        };
        assert_eq!(m.wire_size(), 4 + 8 + 1 + 8);
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let variants = [
            RbMsg::Init {
                origin: NodeId(1),
                tag: 9,
                value: 7u64,
            },
            RbMsg::Echo {
                origin: NodeId(2),
                tag: u64::MAX,
                value: 0,
            },
            RbMsg::Ready {
                origin: NodeId(3),
                tag: 0,
                value: 42,
            },
        ];
        for m in variants {
            let bytes = m.encode();
            assert_eq!(RbMsg::<u64>::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn codec_rejects_unknown_discriminants() {
        let mut bytes = RbMsg::Init {
            origin: NodeId(0),
            tag: 0,
            value: 1u64,
        }
        .encode();
        bytes[0] = 0xEE;
        assert!(matches!(
            RbMsg::<u64>::decode(&bytes),
            Err(fireledger_types::CodecError::BadTag { what: "RbMsg", .. })
        ));
    }
}
