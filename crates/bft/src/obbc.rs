//! Optimistic Binary Byzantine Consensus (OBBC) — Algorithm 4 / Appendix A.
//!
//! `OBBC_v` decides a bit. Its defining feature is **fast termination**: if no
//! node proposes the value `v' ≠ v`, every correct node decides `v` after a
//! single all-to-all exchange of (unsigned, single-bit) votes. In FireLedger
//! `v = 1` ("deliver the proposer's message") and `evidence(1)` is the
//! proposer's signed header, so the common case of every round is exactly one
//! such exchange.
//!
//! When the fast path fails, Algorithm 4 exchanges evidences and then falls
//! back to a full binary Byzantine consensus (`BBC_v.propose`, line OB19).
//! Consistent with the paper's implementation — which uses BFT-SMaRt as that
//! fallback (§6.1.2) — this state machine does *not* embed the fallback
//! consensus. Instead it resolves into an [`ObbcOutcome`]: either a fast
//! decision, or a `Fallback { proposal, evidence }` that the caller submits to
//! its BFT consensus layer (the [`crate::pbft`] instance owned by the
//! FireLedger worker).
//!
//! Evidence validation is the caller's job (the paper's external `valid`
//! function): callers pass already-validated evidence into
//! [`Obbc::on_evidence_reply`], mirroring how WRB validates the proposer's
//! signature before voting.

use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::{ClusterConfig, NodeId, Outbox, WireSize};
use std::collections::HashMap;
use std::fmt::Debug;

/// Wire messages of one OBBC instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObbcMsg<E> {
    /// A node's vote (line OB4). A single bit on the wire.
    Vote {
        /// Instance identifier (the FireLedger round).
        instance: u64,
        /// The vote.
        value: bool,
    },
    /// Request for `evidence(v)` (line OB12).
    EvidenceRequest {
        /// Instance identifier.
        instance: u64,
    },
    /// Reply carrying the sender's evidence, if it has one (line OB21).
    EvidenceReply {
        /// Instance identifier.
        instance: u64,
        /// The sender's evidence for the favoured value, or `None`.
        evidence: Option<E>,
    },
}

impl<E: WireSize> WireSize for ObbcMsg<E> {
    fn wire_size(&self) -> usize {
        match self {
            // instance + 1 bit of protocol data (the paper's "single bit").
            ObbcMsg::Vote { .. } => 8 + 1,
            ObbcMsg::EvidenceRequest { .. } => 8 + 1,
            ObbcMsg::EvidenceReply { evidence, .. } => 8 + 1 + evidence.wire_size(),
        }
    }
}

/// Layout per WIRE_FORMAT.md §5.3: a discriminant byte (`0x01` Vote, `0x02`
/// EvidenceRequest, `0x03` EvidenceReply) followed by `instance u64` and the
/// variant's remaining fields. (FireLedger itself inlines OBBC votes into its
/// worker messages; this standalone layout exists so OBBC stays usable as an
/// independent building block.)
impl<E: WireCodec> WireCodec for ObbcMsg<E> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            ObbcMsg::Vote { instance, value } => {
                out.push(1);
                instance.encode_to(out);
                value.encode_to(out);
            }
            ObbcMsg::EvidenceRequest { instance } => {
                out.push(2);
                instance.encode_to(out);
            }
            ObbcMsg::EvidenceReply { instance, evidence } => {
                out.push(3);
                instance.encode_to(out);
                evidence.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(ObbcMsg::Vote {
                instance: r.u64()?,
                value: bool::decode_from(r)?,
            }),
            2 => Ok(ObbcMsg::EvidenceRequest { instance: r.u64()? }),
            3 => Ok(ObbcMsg::EvidenceReply {
                instance: r.u64()?,
                evidence: Option::<E>::decode_from(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "ObbcMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        // discriminant + instance, plus the variant's remaining fields.
        1 + 8
            + match self {
                ObbcMsg::Vote { value, .. } => value.encoded_len(),
                ObbcMsg::EvidenceRequest { .. } => 0,
                ObbcMsg::EvidenceReply { evidence, .. } => evidence.encoded_len(),
            }
    }
}

/// How an OBBC instance resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObbcOutcome<E> {
    /// The fast path succeeded: `v = 1` was decided in one communication step
    /// (OBBC_v-Fast-Termination).
    FastDecide(bool),
    /// The fast path failed. The caller must run the fallback binary
    /// consensus with `proposal` (the value adopted after the evidence
    /// exchange, line OB15–OB18), attaching `evidence` when proposing `1`.
    Fallback {
        /// The value to propose to the fallback consensus.
        proposal: bool,
        /// Valid evidence for `1`, if any was collected.
        evidence: Option<E>,
    },
}

/// One instance of OBBC₁ (the favoured value is `true`).
#[derive(Debug)]
pub struct Obbc<E> {
    me: NodeId,
    cluster: ClusterConfig,
    instance: u64,
    my_vote: Option<bool>,
    my_evidence: Option<E>,
    votes: HashMap<NodeId, bool>,
    evidence_replies: HashMap<NodeId, Option<E>>,
    evidence_requested: bool,
    resolved: bool,
}

impl<E> Obbc<E>
where
    E: Clone + Debug,
{
    /// Creates the OBBC state of node `me` for `instance`.
    pub fn new(me: NodeId, cluster: ClusterConfig, instance: u64) -> Self {
        Obbc {
            me,
            cluster,
            instance,
            my_vote: None,
            my_evidence: None,
            votes: HashMap::new(),
            evidence_replies: HashMap::new(),
            evidence_requested: false,
            resolved: false,
        }
    }

    /// The instance identifier.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// True once the instance produced an outcome.
    pub fn is_resolved(&self) -> bool {
        self.resolved
    }

    /// This node's vote, once cast.
    pub fn my_vote(&self) -> Option<bool> {
        self.my_vote
    }

    /// Proposes `vote`, carrying `evidence` when voting for the favoured
    /// value (lines OB1–OB4). Returns an outcome immediately only in the
    /// degenerate single-quorum case (n - f = 1).
    pub fn propose(
        &mut self,
        vote: bool,
        evidence: Option<E>,
        out: &mut Outbox<ObbcMsg<E>>,
    ) -> Option<ObbcOutcome<E>> {
        debug_assert!(
            !vote || evidence.is_some(),
            "voting 1 requires evidence(1) (the proposer's signed message)"
        );
        debug_assert!(
            vote || evidence.is_none(),
            "evidence must be nil when voting 0"
        );
        if self.my_vote.is_some() {
            return None;
        }
        self.my_vote = Some(vote);
        self.my_evidence = evidence;
        out.broadcast(ObbcMsg::Vote {
            instance: self.instance,
            value: vote,
        });
        self.record_vote(self.me, vote, out)
    }

    /// Handles a vote from a peer (or the local node).
    pub fn on_vote(
        &mut self,
        from: NodeId,
        value: bool,
        out: &mut Outbox<ObbcMsg<E>>,
    ) -> Option<ObbcOutcome<E>> {
        self.record_vote(from, value, out)
    }

    fn record_vote(
        &mut self,
        from: NodeId,
        value: bool,
        out: &mut Outbox<ObbcMsg<E>>,
    ) -> Option<ObbcOutcome<E>> {
        if self.resolved {
            return None;
        }
        self.votes.entry(from).or_insert(value);
        // Wait until we have cast our own vote and heard from a quorum
        // (lines OB5–OB6: "wait until n − f proposals have been received").
        if self.my_vote.is_none() || self.votes.len() < self.cluster.quorum() {
            return None;
        }
        if self.votes.values().all(|v| *v) {
            // votes = {v}: fast decision (lines OB7–OB9).
            self.resolved = true;
            return Some(ObbcOutcome::FastDecide(true));
        }
        // Couldn't terminate quickly; ask for evidences (line OB12).
        if !self.evidence_requested {
            self.evidence_requested = true;
            out.broadcast(ObbcMsg::EvidenceRequest {
                instance: self.instance,
            });
            // Our own evidence counts as one reply (line OB24 includes self).
            let own = self.my_evidence.clone();
            return self.record_evidence(self.me, own);
        }
        None
    }

    /// Handles an evidence request from `from` (lines OB20–OB21).
    pub fn on_evidence_request(&mut self, from: NodeId, out: &mut Outbox<ObbcMsg<E>>) {
        out.send(
            from,
            ObbcMsg::EvidenceReply {
                instance: self.instance,
                evidence: self.my_evidence.clone(),
            },
        );
    }

    /// Handles an evidence reply. The caller must pass `None` instead of an
    /// evidence that failed its external validity check.
    pub fn on_evidence_reply(
        &mut self,
        from: NodeId,
        evidence: Option<E>,
    ) -> Option<ObbcOutcome<E>> {
        if !self.evidence_requested {
            return None;
        }
        self.record_evidence(from, evidence)
    }

    fn record_evidence(&mut self, from: NodeId, evidence: Option<E>) -> Option<ObbcOutcome<E>> {
        if self.resolved {
            return None;
        }
        self.evidence_replies.entry(from).or_insert(evidence);
        if self.evidence_replies.len() < self.cluster.quorum() {
            return None;
        }
        // Lines OB15–OB18: adopt v if any valid evidence(v) was received.
        let valid_evidence = self.evidence_replies.values().flatten().next().cloned();
        let proposal = valid_evidence.is_some() || self.my_vote == Some(true);
        self.resolved = true;
        Some(ObbcOutcome::Fallback {
            proposal,
            evidence: valid_evidence.or_else(|| self.my_evidence.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ev = &'static str;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig::new(n)
    }

    #[test]
    fn unanimous_ones_fast_decide_in_one_step() {
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(4), 7);
        let mut out = Outbox::new();
        assert!(node.propose(true, Some("sig"), &mut out).is_none());
        assert!(node.on_vote(NodeId(1), true, &mut out).is_none());
        let outcome = node.on_vote(NodeId(2), true, &mut out);
        assert_eq!(outcome, Some(ObbcOutcome::FastDecide(true)));
        assert!(node.is_resolved());
        // Late votes are ignored.
        assert!(node.on_vote(NodeId(3), true, &mut out).is_none());
        // Exactly one broadcast (the vote) was emitted on the fast path.
        let broadcasts = out
            .into_actions()
            .iter()
            .filter(|a| matches!(a, fireledger_types::Action::Broadcast { .. }))
            .count();
        assert_eq!(broadcasts, 1);
    }

    #[test]
    fn mixed_votes_trigger_evidence_exchange_then_fallback() {
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(4), 1);
        let mut out = Outbox::new();
        node.propose(true, Some("header"), &mut out);
        node.on_vote(NodeId(1), false, &mut out);
        // Quorum reached with mixed votes → evidence request broadcast, own
        // evidence recorded; not yet resolved.
        assert!(node.on_vote(NodeId(2), true, &mut out).is_none());
        assert!(!node.is_resolved());
        // Two more replies complete the n − f = 3 evidence quorum.
        assert!(node.on_evidence_reply(NodeId(1), None).is_none());
        let outcome = node.on_evidence_reply(NodeId(2), Some("header"));
        assert_eq!(
            outcome,
            Some(ObbcOutcome::Fallback {
                proposal: true,
                evidence: Some("header"),
            })
        );
    }

    #[test]
    fn all_zero_votes_fall_back_with_zero_proposal() {
        let mut node = Obbc::<Ev>::new(NodeId(3), cluster(4), 2);
        let mut out = Outbox::new();
        node.propose(false, None, &mut out);
        node.on_vote(NodeId(0), false, &mut out);
        assert!(node.on_vote(NodeId(1), false, &mut out).is_none());
        // Evidence replies all nil → propose 0 to the fallback.
        node.on_evidence_reply(NodeId(0), None);
        let outcome = node.on_evidence_reply(NodeId(1), None);
        assert_eq!(
            outcome,
            Some(ObbcOutcome::Fallback {
                proposal: false,
                evidence: None,
            })
        );
    }

    #[test]
    fn zero_voter_adopts_one_when_evidence_appears() {
        // A node that timed out (voted 0) adopts 1 once any peer shows the
        // proposer's signed message (OBBC_v-Validity).
        let mut node = Obbc::<Ev>::new(NodeId(1), cluster(4), 9);
        let mut out = Outbox::new();
        node.propose(false, None, &mut out);
        node.on_vote(NodeId(0), true, &mut out);
        node.on_vote(NodeId(2), true, &mut out);
        node.on_evidence_reply(NodeId(0), Some("sig"));
        let outcome = node.on_evidence_reply(NodeId(2), Some("sig"));
        assert_eq!(
            outcome,
            Some(ObbcOutcome::Fallback {
                proposal: true,
                evidence: Some("sig"),
            })
        );
    }

    #[test]
    fn evidence_request_is_answered_with_local_evidence() {
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(4), 3);
        let mut out = Outbox::new();
        node.propose(true, Some("mine"), &mut out);
        let mut reply_out = Outbox::new();
        node.on_evidence_request(NodeId(2), &mut reply_out);
        let actions = reply_out.into_actions();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            fireledger_types::Action::Send { to, msg } => {
                assert_eq!(*to, NodeId(2));
                assert_eq!(
                    *msg,
                    ObbcMsg::EvidenceReply {
                        instance: 3,
                        evidence: Some("mine")
                    }
                );
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn votes_wait_for_own_proposal() {
        // Votes arriving before we proposed do not resolve the instance.
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(4), 5);
        let mut out = Outbox::new();
        assert!(node.on_vote(NodeId(1), true, &mut out).is_none());
        assert!(node.on_vote(NodeId(2), true, &mut out).is_none());
        assert!(node.on_vote(NodeId(3), true, &mut out).is_none());
        assert!(!node.is_resolved());
        let outcome = node.propose(true, Some("e"), &mut out);
        assert_eq!(outcome, Some(ObbcOutcome::FastDecide(true)));
    }

    #[test]
    fn duplicate_votes_from_same_node_count_once() {
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(7), 0);
        let mut out = Outbox::new();
        node.propose(true, Some("e"), &mut out);
        for _ in 0..10 {
            assert!(node.on_vote(NodeId(1), true, &mut out).is_none());
        }
        assert!(!node.is_resolved());
    }

    #[test]
    fn unsolicited_evidence_replies_are_ignored() {
        let mut node = Obbc::<Ev>::new(NodeId(0), cluster(4), 0);
        let mut out = Outbox::new();
        node.propose(true, Some("e"), &mut out);
        assert!(node.on_evidence_reply(NodeId(1), Some("x")).is_none());
        assert!(!node.is_resolved());
    }

    #[test]
    fn wire_sizes_are_single_bit_scale_for_votes() {
        let vote: ObbcMsg<u64> = ObbcMsg::Vote {
            instance: 1,
            value: true,
        };
        assert!(vote.wire_size() <= 9);
        let req: ObbcMsg<u64> = ObbcMsg::EvidenceRequest { instance: 1 };
        assert!(req.wire_size() <= 9);
        let reply: ObbcMsg<u64> = ObbcMsg::EvidenceReply {
            instance: 1,
            evidence: Some(7),
        };
        assert!(reply.wire_size() > req.wire_size());
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let variants: Vec<ObbcMsg<u64>> = vec![
            ObbcMsg::Vote {
                instance: 3,
                value: true,
            },
            ObbcMsg::Vote {
                instance: 3,
                value: false,
            },
            ObbcMsg::EvidenceRequest { instance: 9 },
            ObbcMsg::EvidenceReply {
                instance: 9,
                evidence: Some(7),
            },
            ObbcMsg::EvidenceReply {
                instance: 9,
                evidence: None,
            },
        ];
        for m in variants {
            assert_eq!(ObbcMsg::<u64>::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
        assert!(matches!(
            ObbcMsg::<u64>::decode(&[0x44]),
            Err(fireledger_types::CodecError::BadTag {
                what: "ObbcMsg",
                ..
            })
        ));
    }
}
