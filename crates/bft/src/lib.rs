//! # fireledger-bft
//!
//! The classical BFT substrates FireLedger builds on (§3.2 of the paper):
//!
//! * [`rb`] — Bracha-style **Reliable Broadcast**, used to disseminate proofs
//!   of Byzantine behaviour ("panic" messages) before recovery;
//! * [`pbft`] — a PBFT-style **Atomic Broadcast** with rotating leader and
//!   view change. The paper's implementation delegates both its atomic
//!   broadcast and the OBBC fallback to BFT-SMaRt (§6.1.2, Figure 3); this
//!   module is our from-scratch stand-in for BFT-SMaRt and also serves as the
//!   BFT-SMaRt baseline ordering service of §7.6;
//! * [`obbc`] — the **Optimistic Binary Byzantine Consensus** of Appendix A:
//!   single-communication-step agreement when every node votes the favoured
//!   value, falling back to a full binary consensus otherwise.
//!
//! All components are sans-IO state machines: they are embedded in a parent
//! [`fireledger_types::Protocol`] (the FireLedger worker, the WRB service, or
//! the baseline ordering node) that owns the wire and wraps their messages.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod obbc;
pub mod pbft;
pub mod rb;

pub use obbc::{Obbc, ObbcMsg, ObbcOutcome};
pub use pbft::{Pbft, PbftConfig, PbftMsg};
pub use rb::{RbMsg, ReliableBroadcast};
