//! Fault injection: crashes, omissions and Byzantine message manipulation.
//!
//! The simulator calls the [`Adversary`] hook for every message about to be
//! scheduled. The hook may pass the message through, drop it, delay it, or —
//! for scripted Byzantine senders — replace it (equivocation). Concrete
//! Byzantine behaviours that need to understand FireLedger's message format
//! (e.g. "send different blocks to two halves of the cluster", §7.4.2) are
//! implemented next to the protocol in `fireledger`; this module provides the
//! generic hook plus protocol-agnostic faults (crash, omission).

use crate::time::SimTime;
use fireledger_types::{FaultPlan, LinkDecision, LinkFaultEngine, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The fate of an intercepted message.
#[derive(Clone, Debug, PartialEq)]
pub enum Fate<M> {
    /// Deliver the message unchanged.
    Deliver(M),
    /// Deliver a (possibly different) message after an extra delay,
    /// preserving per-link FIFO order.
    DeliverDelayed(M, Duration),
    /// Deliver the message after an extra delay **exempt from the per-link
    /// FIFO clamp**, so later messages on the same link may overtake it —
    /// the reordering fault of a [`FaultPlan`].
    DeliverReordered(M, Duration),
    /// Deliver the message normally and deliver a second copy after the
    /// extra delay (both copies pay NIC bandwidth).
    DeliverDuplicated(M, Duration),
    /// Silently drop the message.
    Drop,
}

/// A fault-injection hook consulted for every message send.
pub trait Adversary<M>: Send {
    /// Decides what happens to `msg` sent from `from` to `to` at time `now`.
    fn intercept(&mut self, from: NodeId, to: NodeId, msg: M, now: SimTime) -> Fate<M>;

    /// True when `node` has crashed by time `now`; crashed nodes receive no
    /// events and send no messages.
    fn is_crashed(&self, _node: NodeId, _now: SimTime) -> bool {
        false
    }
}

/// The no-fault adversary: every message is delivered unchanged.
#[derive(Clone, Debug, Default)]
pub struct PassThrough;

impl<M> Adversary<M> for PassThrough {
    fn intercept(&mut self, _from: NodeId, _to: NodeId, msg: M, _now: SimTime) -> Fate<M> {
        Fate::Deliver(msg)
    }
}

/// Crash-fault schedule: each listed node stops participating at its crash
/// time (all of its workers stop with it, §7.4.1).
#[derive(Clone, Debug, Default)]
pub struct CrashSchedule {
    crashes: HashMap<NodeId, SimTime>,
}

impl CrashSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `node` to crash at `at`.
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.insert(node, at);
        self
    }

    /// Crashes the last `f` nodes of an `n`-node cluster at `at` — the shape
    /// of the benign-failure experiment (§7.4.1).
    pub fn crash_last_f(n: usize, f: usize, at: SimTime) -> Self {
        let mut s = CrashSchedule::new();
        for i in (n - f)..n {
            s.crashes.insert(NodeId(i as u32), at);
        }
        s
    }

    /// The nodes that never crash.
    pub fn correct_nodes(&self, n: usize) -> Vec<NodeId> {
        (0..n as u32)
            .map(NodeId)
            .filter(|id| !self.crashes.contains_key(id))
            .collect()
    }

    /// True when `node` has crashed by time `now`.
    pub fn crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes.get(&node).is_some_and(|t| now >= *t)
    }
}

impl<M> Adversary<M> for CrashSchedule {
    fn intercept(&mut self, from: NodeId, to: NodeId, msg: M, now: SimTime) -> Fate<M> {
        if self.crashed(from, now) || self.crashed(to, now) {
            Fate::Drop
        } else {
            Fate::Deliver(msg)
        }
    }

    fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashed(node, now)
    }
}

/// Drops a fixed fraction of messages from a set of lossy senders — used to
/// exercise the omission-failure column of Table 1. Dropping is deterministic
/// (every k-th message) so experiments stay reproducible.
#[derive(Clone, Debug)]
pub struct OmissionFaults {
    lossy: Vec<NodeId>,
    drop_every: u64,
    counter: u64,
}

impl OmissionFaults {
    /// Every `drop_every`-th message from a node in `lossy` is dropped.
    pub fn new(lossy: Vec<NodeId>, drop_every: u64) -> Self {
        OmissionFaults {
            lossy,
            drop_every: drop_every.max(1),
            counter: 0,
        }
    }
}

impl<M> Adversary<M> for OmissionFaults {
    fn intercept(&mut self, from: NodeId, _to: NodeId, msg: M, _now: SimTime) -> Fate<M> {
        if self.lossy.contains(&from) {
            self.counter += 1;
            if self.counter.is_multiple_of(self.drop_every) {
                return Fate::Drop;
            }
        }
        Fate::Deliver(msg)
    }
}

/// The adversary compiled from a declarative [`FaultPlan`]: link faults,
/// partitions and node faults are all decided by the shared
/// [`LinkFaultEngine`], so the simulator injects *exactly* the adversity the
/// real-time runtimes' interceptors inject for the same plan.
///
/// Scenario- and builder-level crash events (the pre-plan fault surface)
/// are merged in through an extra [`CrashSchedule`], so one adversary covers
/// both fault vocabularies.
#[derive(Clone, Debug)]
pub struct PlanAdversary {
    engine: LinkFaultEngine,
    extra: CrashSchedule,
}

impl PlanAdversary {
    /// Builds the adversary for `plan`, merging the scenario/builder crash
    /// schedule `extra`.
    pub fn new(plan: FaultPlan, extra: CrashSchedule) -> Self {
        PlanAdversary {
            engine: LinkFaultEngine::new(plan),
            extra,
        }
    }

    /// The plan driving this adversary.
    pub fn plan(&self) -> &FaultPlan {
        self.engine.plan()
    }
}

impl<M: Clone> Adversary<M> for PlanAdversary {
    fn intercept(&mut self, from: NodeId, to: NodeId, msg: M, now: SimTime) -> Fate<M> {
        if self.extra.crashed(from, now) || self.extra.crashed(to, now) {
            return Fate::Drop;
        }
        match self.engine.decide(from, to, now.as_duration()) {
            LinkDecision::Deliver => Fate::Deliver(msg),
            LinkDecision::Drop => Fate::Drop,
            LinkDecision::Delay(d) => Fate::DeliverDelayed(msg, d),
            LinkDecision::Reorder(d) => Fate::DeliverReordered(msg, d),
            LinkDecision::Duplicate(d) => Fate::DeliverDuplicated(msg, d),
        }
    }

    fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.extra.crashed(node, now) || self.engine.node_down(node, now.as_duration())
    }
}

/// Keeps one node off the network until it is flipped to *joined* — the
/// adversary half of a late-join scenario.
///
/// Until the shared flag is set, the node is reported as crashed (the
/// simulator then suppresses its events, including the timers armed by its
/// genesis `on_start`) and every message to or from it is dropped. Once the
/// driver flips the flag — typically right before rebuilding the node via
/// `Simulation::restart_node` so it starts mid-run in state-sync mode — the
/// wrapper becomes transparent and the inner adversary decides everything.
///
/// All other traffic delegates to the wrapped adversary throughout, so a
/// late join composes with any fault plan.
pub struct LateJoinAdversary<M> {
    inner: Box<dyn Adversary<M>>,
    node: NodeId,
    joined: Arc<AtomicBool>,
}

impl<M> LateJoinAdversary<M> {
    /// Wraps `inner`, keeping `node` off the network until the returned
    /// handle (see [`LateJoinAdversary::handle`]) is set to `true`.
    pub fn new(inner: Box<dyn Adversary<M>>, node: NodeId) -> Self {
        LateJoinAdversary {
            inner,
            node,
            joined: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The shared join flag: store `true` to let the node onto the network.
    pub fn handle(&self) -> Arc<AtomicBool> {
        self.joined.clone()
    }

    fn joined(&self) -> bool {
        self.joined.load(Ordering::SeqCst)
    }
}

impl<M> Adversary<M> for LateJoinAdversary<M> {
    fn intercept(&mut self, from: NodeId, to: NodeId, msg: M, now: SimTime) -> Fate<M> {
        if !self.joined() && (from == self.node || to == self.node) {
            return Fate::Drop;
        }
        self.inner.intercept(from, to, msg, now)
    }

    fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        if !self.joined() && node == self.node {
            return true;
        }
        self.inner.is_crashed(node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{FaultWindow, LinkSelector};

    #[test]
    fn plan_adversary_maps_decisions_to_fates() {
        let plan = FaultPlan::named("map")
            .delay(
                LinkSelector::All,
                FaultWindow::ALWAYS,
                Duration::from_millis(3),
                Duration::from_millis(3),
            )
            .crash_recover(
                NodeId(2),
                Duration::from_millis(10),
                Duration::from_millis(20),
            );
        let mut adv = PlanAdversary::new(plan, CrashSchedule::new());
        assert_eq!(
            adv.intercept(NodeId(0), NodeId(1), 7u32, SimTime::ZERO),
            Fate::DeliverDelayed(7, Duration::from_millis(3))
        );
        // Messages to a down node drop; the node reports as crashed only
        // inside its downtime window.
        assert_eq!(
            adv.intercept(NodeId(0), NodeId(2), 7u32, SimTime::from_millis(15)),
            Fate::Drop
        );
        assert!(Adversary::<u32>::is_crashed(
            &adv,
            NodeId(2),
            SimTime::from_millis(15)
        ));
        assert!(!Adversary::<u32>::is_crashed(
            &adv,
            NodeId(2),
            SimTime::from_millis(25)
        ));
        // The merged crash schedule still applies.
        let mut adv = PlanAdversary::new(
            FaultPlan::named("empty"),
            CrashSchedule::new().crash(NodeId(1), SimTime::ZERO),
        );
        assert_eq!(
            adv.intercept(NodeId(1), NodeId(0), 7u32, SimTime::ZERO),
            Fate::Drop
        );
    }

    #[test]
    fn pass_through_delivers_everything() {
        let mut a = PassThrough;
        assert_eq!(
            a.intercept(NodeId(0), NodeId(1), 42u32, SimTime::ZERO),
            Fate::Deliver(42)
        );
        assert!(!Adversary::<u32>::is_crashed(&a, NodeId(0), SimTime::ZERO));
    }

    #[test]
    fn crash_schedule_drops_after_crash_time() {
        let mut a = CrashSchedule::new().crash(NodeId(2), SimTime::from_secs(5));
        // Before the crash everything flows.
        assert_eq!(
            a.intercept(NodeId(2), NodeId(0), 1u32, SimTime::from_secs(4)),
            Fate::Deliver(1)
        );
        // After the crash, messages from and to the crashed node are dropped.
        assert_eq!(
            a.intercept(NodeId(2), NodeId(0), 1u32, SimTime::from_secs(5)),
            Fate::Drop
        );
        assert_eq!(
            a.intercept(NodeId(0), NodeId(2), 1u32, SimTime::from_secs(6)),
            Fate::Drop
        );
        assert!(Adversary::<u32>::is_crashed(
            &a,
            NodeId(2),
            SimTime::from_secs(5)
        ));
        assert!(!Adversary::<u32>::is_crashed(
            &a,
            NodeId(2),
            SimTime::from_secs(4)
        ));
    }

    #[test]
    fn crash_last_f_crashes_the_tail() {
        let a = CrashSchedule::crash_last_f(10, 3, SimTime::from_secs(1));
        let correct = a.correct_nodes(10);
        assert_eq!(correct.len(), 7);
        assert!(correct.contains(&NodeId(0)));
        assert!(!correct.contains(&NodeId(9)));
    }

    #[test]
    fn late_join_gates_one_node_until_flipped() {
        let inner = CrashSchedule::new().crash(NodeId(1), SimTime::from_secs(5));
        let mut a = LateJoinAdversary::new(Box::new(inner), NodeId(3));
        // Before the join: node 3 is off the network in both directions and
        // reports as crashed; everyone else delegates to the inner adversary.
        assert_eq!(
            a.intercept(NodeId(3), NodeId(0), 1u32, SimTime::ZERO),
            Fate::Drop
        );
        assert_eq!(
            a.intercept(NodeId(0), NodeId(3), 1u32, SimTime::ZERO),
            Fate::Drop
        );
        assert!(a.is_crashed(NodeId(3), SimTime::ZERO));
        assert_eq!(
            a.intercept(NodeId(0), NodeId(1), 1u32, SimTime::ZERO),
            Fate::Deliver(1)
        );
        // After the flip the wrapper is transparent, inner faults included.
        a.handle().store(true, Ordering::SeqCst);
        assert_eq!(
            a.intercept(NodeId(3), NodeId(0), 1u32, SimTime::ZERO),
            Fate::Deliver(1)
        );
        assert!(!a.is_crashed(NodeId(3), SimTime::ZERO));
        assert!(a.is_crashed(NodeId(1), SimTime::from_secs(6)));
        assert_eq!(
            a.intercept(NodeId(1), NodeId(0), 1u32, SimTime::from_secs(6)),
            Fate::Drop
        );
    }

    #[test]
    fn omission_drops_every_kth_message_from_lossy_nodes() {
        let mut a = OmissionFaults::new(vec![NodeId(1)], 3);
        let mut outcomes = Vec::new();
        for i in 0..6 {
            outcomes.push(matches!(
                a.intercept(NodeId(1), NodeId(0), i, SimTime::ZERO),
                Fate::Drop
            ));
        }
        assert_eq!(outcomes, vec![false, false, true, false, false, true]);
        // Non-lossy senders never lose messages.
        for i in 0..10 {
            assert!(matches!(
                a.intercept(NodeId(0), NodeId(1), i, SimTime::ZERO),
                Fate::Deliver(_)
            ));
        }
    }
}
