//! Workload generation.
//!
//! The paper generates random transactions and, to simulate intensive load,
//! lets every proposer fill each block to its maximal size (§7.2). Two modes
//! are therefore useful:
//!
//! * **saturating** — the protocol's `fill_blocks` option pads blocks with
//!   generated transactions, so no explicit injection is required;
//! * **open-loop injection** — [`TxInjector`] submits transactions to nodes at
//!   a configurable aggregate rate, which is what the examples and the
//!   non-triviality tests use.

use fireledger_types::{DetRng, NodeId, Transaction};
use std::time::Duration;

use crate::time::SimTime;

/// An open-loop transaction injector.
///
/// Transactions are spread round-robin across the target nodes and spaced
/// evenly in time; payloads are random bytes of the configured size, matching
/// the paper's randomly generated transactions.
#[derive(Clone, Debug)]
pub struct TxInjector {
    /// Aggregate injection rate, transactions per second.
    pub rate_per_sec: f64,
    /// Payload size σ in bytes.
    pub tx_size: usize,
    /// Nodes that receive transactions.
    pub targets: Vec<NodeId>,
    seed: u64,
}

impl TxInjector {
    /// Creates an injector with the given aggregate rate and payload size,
    /// targeting all `n` nodes.
    pub fn new(rate_per_sec: f64, tx_size: usize, n: usize) -> Self {
        TxInjector {
            rate_per_sec,
            tx_size,
            targets: (0..n as u32).map(NodeId).collect(),
            seed: 0x7A_17_AD,
        }
    }

    /// Restricts injection to specific nodes.
    pub fn with_targets(mut self, targets: Vec<NodeId>) -> Self {
        self.targets = targets;
        self
    }

    /// Overrides the RNG seed used for payload generation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the injection schedule for the window `[start, end)` as
    /// `(time, target node, transaction)` triples, in time order.
    pub fn schedule(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, NodeId, Transaction)> {
        if self.rate_per_sec <= 0.0 || self.targets.is_empty() || end <= start {
            return Vec::new();
        }
        let interval = Duration::from_secs_f64(1.0 / self.rate_per_sec);
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = start;
        let mut seq = 0u64;
        while t < end {
            let target = self.targets[(seq as usize) % self.targets.len()];
            let mut payload = vec![0u8; self.tx_size];
            rng.fill_bytes(payload.as_mut_slice());
            out.push((
                t,
                target,
                Transaction::new(1_000 + target.0 as u64, seq, payload),
            ));
            seq += 1;
            t += interval;
        }
        out
    }
}

/// Generates a batch of `count` random transactions of `tx_size` bytes — a
/// convenience used by tests, examples and the block-filling code path.
pub fn random_batch(count: usize, tx_size: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut payload = vec![0u8; tx_size];
            rng.fill_bytes(payload.as_mut_slice());
            Transaction::new(0xFEED, i as u64, payload)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_expected_rate_and_ordering() {
        let inj = TxInjector::new(100.0, 512, 4);
        let sched = inj.schedule(SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!(sched.len(), 200);
        assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
        // Round-robin across 4 nodes.
        assert_eq!(sched[0].1, NodeId(0));
        assert_eq!(sched[1].1, NodeId(1));
        assert_eq!(sched[4].1, NodeId(0));
        assert!(sched.iter().all(|(_, _, tx)| tx.payload_len() == 512));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = TxInjector::new(50.0, 64, 2).with_seed(7);
        let b = TxInjector::new(50.0, 64, 2).with_seed(7);
        let c = TxInjector::new(50.0, 64, 2).with_seed(8);
        let sa = a.schedule(SimTime::ZERO, SimTime::from_secs(1));
        let sb = b.schedule(SimTime::ZERO, SimTime::from_secs(1));
        let sc = c.schedule(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(sa, sb);
        assert_ne!(
            sa.iter()
                .map(|(_, _, t)| t.payload.clone())
                .collect::<Vec<_>>(),
            sc.iter()
                .map(|(_, _, t)| t.payload.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_or_degenerate_schedules() {
        let inj = TxInjector::new(0.0, 512, 4);
        assert!(inj
            .schedule(SimTime::ZERO, SimTime::from_secs(1))
            .is_empty());
        let inj = TxInjector::new(10.0, 512, 4);
        assert!(inj
            .schedule(SimTime::from_secs(1), SimTime::from_secs(1))
            .is_empty());
        let inj = TxInjector::new(10.0, 512, 4).with_targets(vec![]);
        assert!(inj
            .schedule(SimTime::ZERO, SimTime::from_secs(1))
            .is_empty());
    }

    #[test]
    fn targeted_injection_only_hits_targets() {
        let inj = TxInjector::new(10.0, 32, 4).with_targets(vec![NodeId(2)]);
        let sched = inj.schedule(SimTime::ZERO, SimTime::from_secs(1));
        assert!(sched.iter().all(|(_, node, _)| *node == NodeId(2)));
    }

    #[test]
    fn random_batch_sizes_and_uniqueness() {
        let batch = random_batch(10, 256, 1);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|t| t.payload_len() == 256));
        // Sequence numbers are unique.
        let mut seqs: Vec<_> = batch.iter().map(|t| t.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 10);
        // Different seeds give different payloads.
        let other = random_batch(10, 256, 2);
        assert_ne!(batch[0].payload, other[0].payload);
    }
}
