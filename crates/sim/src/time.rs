//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in nanoseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time as a `Duration` since the start of the simulation.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(rhs.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime(1_000_000_000));
        assert_eq!(SimTime::from_millis(1500), SimTime::from_micros(1_500_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        // Saturating difference.
        assert_eq!(SimTime::ZERO - t, Duration::ZERO);
    }

    #[test]
    fn max_and_ordering() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }

    #[test]
    fn conversions() {
        let t = SimTime::from_millis(2500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(t.as_duration(), Duration::from_millis(2500));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += Duration::from_secs(1);
        t += Duration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
    }
}
