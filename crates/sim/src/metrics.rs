//! Metrics collection for simulation runs.
//!
//! The collector aggregates the protocol [`Observation`]s emitted through the
//! outbox into the quantities the paper reports: blocks per second (bps),
//! transactions per second (tps), block delivery latency (average, CDF,
//! percentiles — Figures 8 and 15), the relative time spent between the five
//! lifecycle events A–E (Figure 9), and the recovery rate (rps, Figure 12).

use crate::time::SimTime;
use fireledger_types::{NodeId, Observation, Round, WorkerId};
use std::collections::HashMap;
use std::time::Duration;

/// First-observed timestamps of the five lifecycle events of one block
/// (Figure 9: A block proposal, B header proposal, C tentative decision,
/// D definite decision, E FLO delivery).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockLifecycle {
    /// (A) block body disseminated.
    pub proposed: Option<SimTime>,
    /// (B) header entered the consensus path.
    pub header: Option<SimTime>,
    /// (C) first tentative decision at any node.
    pub tentative: Option<SimTime>,
    /// (D) first definite decision at any node.
    pub definite: Option<SimTime>,
    /// (E) first FLO delivery at any node.
    pub delivered: Option<SimTime>,
    /// Number of transactions in the block.
    pub tx_count: u32,
    /// Payload bytes in the block.
    pub payload_bytes: u64,
}

/// Per-node aggregate counters.
#[derive(Clone, Debug, Default)]
pub struct NodeCounters {
    /// Blocks this node decided definitively.
    pub definite_blocks: u64,
    /// Transactions in those blocks.
    pub definite_txs: u64,
    /// Payload bytes in those blocks.
    pub definite_bytes: u64,
    /// Blocks delivered by FLO's round-robin merge.
    pub flo_blocks: u64,
    /// Transactions delivered by FLO.
    pub flo_txs: u64,
    /// OBBC fallback invocations observed.
    pub fallbacks: u64,
    /// Recovery procedures started.
    pub recoveries: u64,
    /// WRB deliveries that returned nil.
    pub nil_deliveries: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Signatures produced (from CPU charges).
    pub signatures: u64,
    /// Signature verifications performed (from CPU charges).
    pub verifications: u64,
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    per_node: Vec<NodeCounters>,
    lifecycles: HashMap<(WorkerId, Round), BlockLifecycle>,
    /// Per-delivery latency samples (block proposal → FLO delivery, one sample
    /// per delivering node).
    latency_samples: Vec<Duration>,
    /// Measurement window start (observations before this are still recorded
    /// in lifecycles but excluded from rate counters).
    window_start: SimTime,
    window_end: SimTime,
}

impl Metrics {
    /// Creates a collector for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![NodeCounters::default(); n],
            ..Default::default()
        }
    }

    /// Restricts rate computations to observations at or after `start`
    /// (used by the crash-failure experiment, which measures only after the
    /// faulty nodes crash, §7.4.1).
    pub fn set_window_start(&mut self, start: SimTime) {
        self.window_start = start;
    }

    /// Records the end of the run (used as the denominator of rates).
    pub fn set_window_end(&mut self, end: SimTime) {
        self.window_end = end;
    }

    /// The measurement window length in seconds.
    pub fn window_secs(&self) -> f64 {
        (self.window_end.since(self.window_start)).as_secs_f64()
    }

    fn lifecycle(&mut self, worker: WorkerId, round: Round) -> &mut BlockLifecycle {
        self.lifecycles.entry((worker, round)).or_default()
    }

    /// Records an observation from `node` at time `now`.
    pub fn record(&mut self, node: NodeId, now: SimTime, obs: &Observation) {
        let in_window = now >= self.window_start;
        match obs {
            Observation::BlockProposed {
                worker,
                round,
                tx_count,
                payload_bytes,
            } => {
                let lc = self.lifecycle(*worker, *round);
                lc.proposed.get_or_insert(now);
                lc.tx_count = *tx_count;
                lc.payload_bytes = *payload_bytes;
            }
            Observation::HeaderProposed { worker, round } => {
                self.lifecycle(*worker, *round).header.get_or_insert(now);
            }
            Observation::TentativeDecision { worker, round } => {
                self.lifecycle(*worker, *round).tentative.get_or_insert(now);
            }
            Observation::DefiniteDecision {
                worker,
                round,
                tx_count,
                payload_bytes,
            } => {
                {
                    let lc = self.lifecycle(*worker, *round);
                    lc.definite.get_or_insert(now);
                    if lc.tx_count == 0 {
                        lc.tx_count = *tx_count;
                        lc.payload_bytes = *payload_bytes;
                    }
                }
                if in_window {
                    let c = &mut self.per_node[node.as_usize()];
                    c.definite_blocks += 1;
                    c.definite_txs += *tx_count as u64;
                    c.definite_bytes += *payload_bytes;
                }
            }
            Observation::FloDelivery { worker, round } => {
                let proposed = {
                    let lc = self.lifecycle(*worker, *round);
                    lc.delivered.get_or_insert(now);
                    lc.proposed.or(lc.header)
                };
                if in_window {
                    let tx_count = self.lifecycles[&(*worker, *round)].tx_count as u64;
                    let c = &mut self.per_node[node.as_usize()];
                    c.flo_blocks += 1;
                    c.flo_txs += tx_count;
                    if let Some(p) = proposed {
                        self.latency_samples.push(now.since(p));
                    }
                }
            }
            Observation::FallbackInvoked { .. } => {
                if in_window {
                    self.per_node[node.as_usize()].fallbacks += 1;
                }
            }
            Observation::RecoveryStarted { .. } => {
                if in_window {
                    self.per_node[node.as_usize()].recoveries += 1;
                }
            }
            Observation::RecoveryFinished { .. }
            | Observation::ByzantineDetected { .. }
            | Observation::SyncCompleted { .. }
            // Execution-root mismatches are counted by the engine itself
            // (`ExecStats::root_mismatches`, surfaced through the report's
            // `execution` section); the observation exists for scripted
            // fault experiments to assert on.
            | Observation::ExecRootMismatch { .. } => {}
            Observation::NilDelivery { .. } => {
                if in_window {
                    self.per_node[node.as_usize()].nil_deliveries += 1;
                }
            }
        }
    }

    /// Records that `node` sent a message of `bytes` bytes.
    pub fn record_send(&mut self, node: NodeId, bytes: usize, now: SimTime) {
        if now >= self.window_start {
            let c = &mut self.per_node[node.as_usize()];
            c.msgs_sent += 1;
            c.bytes_sent += bytes as u64;
        }
    }

    /// Records CPU charge counters for `node`.
    pub fn record_cpu(&mut self, node: NodeId, signs: u32, verifies: u32, now: SimTime) {
        if now >= self.window_start {
            let c = &mut self.per_node[node.as_usize()];
            c.signatures += signs as u64;
            c.verifications += verifies as u64;
        }
    }

    /// Per-node counters.
    pub fn node_counters(&self) -> &[NodeCounters] {
        &self.per_node
    }

    /// All recorded block lifecycles.
    pub fn lifecycles(&self) -> &HashMap<(WorkerId, Round), BlockLifecycle> {
        &self.lifecycles
    }

    /// Raw latency samples (proposal → FLO delivery).
    pub fn latency_samples(&self) -> &[Duration] {
        &self.latency_samples
    }

    /// A percentile (0..=100) of the delivery latency distribution.
    pub fn latency_percentile(&self, pct: f64) -> Option<Duration> {
        if self.latency_samples.is_empty() {
            return None;
        }
        let mut sorted = self.latency_samples.clone();
        sorted.sort();
        let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// The empirical CDF of delivery latency as (latency_seconds, fraction)
    /// points — the data behind Figures 8 and 15.
    pub fn latency_cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.latency_samples.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut sorted = self.latency_samples.clone();
        sorted.sort();
        let n = sorted.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (sorted[idx].as_secs_f64(), frac)
            })
            .collect()
    }

    /// Average relative time spent in each of the four intervals A→B, B→C,
    /// C→D, D→E across all blocks with a complete lifecycle (Figure 9). The
    /// four fractions sum to 1 (unless no block completed, in which case all
    /// are 0).
    pub fn phase_breakdown(&self) -> [f64; 4] {
        let mut sums = [0.0f64; 4];
        let mut total = 0.0f64;
        // Sum in key order: HashMap iteration order varies per process, and
        // float accumulation is order-sensitive, so summing unordered would
        // make reports differ in the last ulp across otherwise identical
        // deterministic runs.
        let mut keys: Vec<_> = self.lifecycles.keys().copied().collect();
        keys.sort();
        for lc in keys.iter().map(|k| &self.lifecycles[k]) {
            let (Some(a), Some(b), Some(c), Some(d), Some(e)) = (
                lc.proposed,
                lc.header,
                lc.tentative,
                lc.definite,
                lc.delivered,
            ) else {
                continue;
            };
            let spans = [
                b.since(a).as_secs_f64(),
                c.since(b).as_secs_f64(),
                d.since(c).as_secs_f64(),
                e.since(d).as_secs_f64(),
            ];
            for (s, acc) in spans.iter().zip(sums.iter_mut()) {
                *acc += s;
            }
            total += spans.iter().sum::<f64>();
        }
        if total <= 0.0 {
            return [0.0; 4];
        }
        [
            sums[0] / total,
            sums[1] / total,
            sums[2] / total,
            sums[3] / total,
        ]
    }

    /// Builds the run summary, averaging rates across the `include` nodes
    /// (pass `None` to include all nodes; the crash experiment averages over
    /// correct nodes only).
    pub fn summary(&self, include: Option<&[NodeId]>) -> RunSummary {
        let secs = self.window_secs().max(1e-9);
        let nodes: Vec<usize> = match include {
            Some(ids) => ids.iter().map(|id| id.as_usize()).collect(),
            None => (0..self.per_node.len()).collect(),
        };
        let k = nodes.len().max(1) as f64;
        let sum = |f: &dyn Fn(&NodeCounters) -> u64| -> f64 {
            nodes
                .iter()
                .map(|i| f(&self.per_node[*i]) as f64)
                .sum::<f64>()
        };
        let tps = sum(&|c| c.definite_txs) / k / secs;
        let bps = sum(&|c| c.definite_blocks) / k / secs;
        let flo_tps = sum(&|c| c.flo_txs) / k / secs;
        let recoveries = sum(&|c| c.recoveries) / k;
        let avg_latency = if self.latency_samples.is_empty() {
            Duration::ZERO
        } else {
            let total: Duration = self.latency_samples.iter().sum();
            total / self.latency_samples.len() as u32
        };
        RunSummary {
            duration_secs: secs,
            tps,
            bps,
            flo_tps,
            avg_latency_secs: avg_latency.as_secs_f64(),
            p50_latency_secs: self
                .latency_percentile(50.0)
                .unwrap_or_default()
                .as_secs_f64(),
            p95_latency_secs: self
                .latency_percentile(95.0)
                .unwrap_or_default()
                .as_secs_f64(),
            p99_latency_secs: self
                .latency_percentile(99.0)
                .unwrap_or_default()
                .as_secs_f64(),
            recoveries_per_sec: recoveries / secs,
            fallbacks: sum(&|c| c.fallbacks) as u64,
            msgs_sent: sum(&|c| c.msgs_sent) as u64,
            bytes_sent: sum(&|c| c.bytes_sent) as u64,
            signatures: sum(&|c| c.signatures) as u64,
            verifications: sum(&|c| c.verifications) as u64,
        }
    }
}

/// Headline numbers of one run, in the units the paper uses.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Measurement window in seconds.
    pub duration_secs: f64,
    /// Definitively decided transactions per second (averaged across nodes).
    pub tps: f64,
    /// Definitively decided blocks per second (averaged across nodes).
    pub bps: f64,
    /// Transactions per second as delivered by FLO's round-robin merge.
    pub flo_tps: f64,
    /// Mean proposal→delivery latency in seconds.
    pub avg_latency_secs: f64,
    /// Median latency.
    pub p50_latency_secs: f64,
    /// 95th percentile latency.
    pub p95_latency_secs: f64,
    /// 99th percentile latency.
    pub p99_latency_secs: f64,
    /// Recovery procedures per second (rps in Figure 12).
    pub recoveries_per_sec: f64,
    /// Total OBBC fallback invocations.
    pub fallbacks: u64,
    /// Total messages sent by the included nodes.
    pub msgs_sent: u64,
    /// Total bytes sent by the included nodes.
    pub bytes_sent: u64,
    /// Total signatures produced.
    pub signatures: u64,
    /// Total signature verifications.
    pub verifications: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_definite(worker: u32, round: u64, txs: u32) -> Observation {
        Observation::DefiniteDecision {
            worker: WorkerId(worker),
            round: Round(round),
            tx_count: txs,
            payload_bytes: txs as u64 * 512,
        }
    }

    #[test]
    fn tps_and_bps_average_across_nodes() {
        let mut m = Metrics::new(4);
        m.set_window_end(SimTime::from_secs(10));
        for node in 0..4u32 {
            for r in 0..100u64 {
                m.record(
                    NodeId(node),
                    SimTime::from_millis(r * 100),
                    &obs_definite(0, r, 50),
                );
            }
        }
        let s = m.summary(None);
        assert!((s.bps - 10.0).abs() < 1e-9, "bps={}", s.bps);
        assert!((s.tps - 500.0).abs() < 1e-9, "tps={}", s.tps);
    }

    #[test]
    fn window_start_excludes_early_observations() {
        let mut m = Metrics::new(1);
        m.set_window_start(SimTime::from_secs(5));
        m.set_window_end(SimTime::from_secs(10));
        m.record(NodeId(0), SimTime::from_secs(1), &obs_definite(0, 0, 10));
        m.record(NodeId(0), SimTime::from_secs(6), &obs_definite(0, 1, 10));
        let s = m.summary(None);
        assert!((s.tps - 2.0).abs() < 1e-9);
        assert!((s.duration_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn summary_can_restrict_to_correct_nodes() {
        let mut m = Metrics::new(2);
        m.set_window_end(SimTime::from_secs(1));
        m.record(NodeId(0), SimTime::from_millis(1), &obs_definite(0, 0, 100));
        // node 1 decided nothing (it crashed)
        let all = m.summary(None);
        let correct = m.summary(Some(&[NodeId(0)]));
        assert!((all.tps - 50.0).abs() < 1e-9);
        assert!((correct.tps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_samples_come_from_flo_delivery() {
        let mut m = Metrics::new(1);
        m.set_window_end(SimTime::from_secs(1));
        m.record(
            NodeId(0),
            SimTime::from_millis(10),
            &Observation::BlockProposed {
                worker: WorkerId(0),
                round: Round(3),
                tx_count: 5,
                payload_bytes: 2560,
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(250),
            &Observation::FloDelivery {
                worker: WorkerId(0),
                round: Round(3),
            },
        );
        assert_eq!(m.latency_samples().len(), 1);
        assert_eq!(m.latency_samples()[0], Duration::from_millis(240));
        assert_eq!(m.latency_percentile(50.0), Some(Duration::from_millis(240)));
        let cdf = m.latency_cdf(4);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_breakdown_sums_to_one() {
        let mut m = Metrics::new(1);
        let w = WorkerId(0);
        let r = Round(0);
        m.record(
            NodeId(0),
            SimTime::from_millis(0),
            &Observation::BlockProposed {
                worker: w,
                round: r,
                tx_count: 1,
                payload_bytes: 1,
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(10),
            &Observation::HeaderProposed {
                worker: w,
                round: r,
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(20),
            &Observation::TentativeDecision {
                worker: w,
                round: r,
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(60),
            &Observation::DefiniteDecision {
                worker: w,
                round: r,
                tx_count: 1,
                payload_bytes: 1,
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(100),
            &Observation::FloDelivery {
                worker: w,
                round: r,
            },
        );
        let b = m.phase_breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((b[0] - 0.1).abs() < 1e-9);
        assert!((b[3] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn phase_breakdown_empty_when_incomplete() {
        let mut m = Metrics::new(1);
        m.record(
            NodeId(0),
            SimTime::from_millis(0),
            &Observation::BlockProposed {
                worker: WorkerId(0),
                round: Round(0),
                tx_count: 1,
                payload_bytes: 1,
            },
        );
        assert_eq!(m.phase_breakdown(), [0.0; 4]);
    }

    #[test]
    fn recoveries_and_fallbacks_counted() {
        let mut m = Metrics::new(1);
        m.set_window_end(SimTime::from_secs(2));
        m.record(
            NodeId(0),
            SimTime::from_millis(5),
            &Observation::RecoveryStarted {
                worker: WorkerId(0),
                round: Round(1),
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(6),
            &Observation::FallbackInvoked {
                worker: WorkerId(0),
                round: Round(1),
            },
        );
        m.record(
            NodeId(0),
            SimTime::from_millis(7),
            &Observation::NilDelivery {
                worker: WorkerId(0),
                round: Round(1),
            },
        );
        let s = m.summary(None);
        assert!((s.recoveries_per_sec - 0.5).abs() < 1e-9);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(m.node_counters()[0].nil_deliveries, 1);
    }

    #[test]
    fn send_and_cpu_counters() {
        let mut m = Metrics::new(2);
        m.set_window_end(SimTime::from_secs(1));
        m.record_send(NodeId(1), 1000, SimTime::from_millis(1));
        m.record_cpu(NodeId(1), 2, 3, SimTime::from_millis(1));
        let s = m.summary(None);
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.bytes_sent, 1000);
        assert_eq!(s.signatures, 2);
        assert_eq!(s.verifications, 3);
    }

    #[test]
    fn empty_metrics_have_empty_summary() {
        let m = Metrics::new(3);
        let s = m.summary(None);
        assert_eq!(s.tps, 0.0);
        assert!(m.latency_percentile(99.0).is_none());
        assert!(m.latency_cdf(10).is_empty());
    }
}
