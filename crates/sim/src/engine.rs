//! The discrete-event simulation engine.
//!
//! [`Simulation`] owns one [`Protocol`] instance per node and an event queue
//! ordered by virtual time. Handling an event produces actions; actions turn
//! into new events:
//!
//! * `Send`/`Broadcast` — the message is charged against the sender's NIC
//!   (egress bandwidth), a per-link latency is sampled, FIFO per-link order is
//!   enforced, and the adversary hook may drop/replace/delay it;
//! * `SetTimer`/`CancelTimer` — generation-counted timers;
//! * `Cpu` — the charge is translated into time with the
//!   [`fireledger_crypto::CostModel`] and scheduled on the node's
//!   earliest-free core; subsequent actions of the same handler (including the
//!   messages it sends) start only after the CPU work completes, which is how
//!   signing cost shows up in the end-to-end latency of a round;
//! * `Deliver`/`Observe` — recorded for tests and metrics.
//!
//! With a fixed seed the whole execution is deterministic.

use crate::adversary::{Adversary, Fate, PassThrough};
use crate::latency::LatencyModel;
use crate::metrics::{Metrics, RunSummary};
use crate::time::SimTime;
use fireledger_crypto::CostModel;
use fireledger_types::{
    Action, Delivery, DetRng, NodeId, Outbox, Protocol, TimerId, Transaction, WireSize,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Duration;

/// Static configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// Per-node egress bandwidth in bytes per second (`None` = unlimited).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// CPU cost model used to charge `CpuCharge` actions.
    pub cost: CostModel,
    /// Whether CPU charges are applied at all (disable to isolate network
    /// effects in ablations).
    pub charge_cpu: bool,
    /// RNG seed; equal seeds give bit-identical executions.
    pub seed: u64,
}

impl SimConfig {
    /// A single data-center cluster: ≈250 µs links, 10 Gbps NICs, m5.xlarge
    /// CPU model (the paper's default deployment, §7).
    pub fn single_dc() -> Self {
        SimConfig {
            latency: LatencyModel::single_dc(),
            bandwidth_bytes_per_sec: Some(1_250_000_000), // 10 Gbps
            cost: CostModel::m5_xlarge(),
            charge_cpu: true,
            seed: 1,
        }
    }

    /// The ten-region geo-distributed deployment of §7.5.
    pub fn geo_distributed() -> Self {
        SimConfig {
            latency: LatencyModel::geo_distributed(),
            bandwidth_bytes_per_sec: Some(250_000_000), // ≈2 Gbps effective WAN egress
            cost: CostModel::m5_xlarge(),
            charge_cpu: true,
            seed: 1,
        }
    }

    /// An idealized network for unit tests: 1 ms constant latency, no
    /// bandwidth limit, free CPU.
    pub fn ideal() -> Self {
        SimConfig {
            latency: LatencyModel::Constant(Duration::from_millis(1)),
            bandwidth_bytes_per_sec: None,
            cost: CostModel::free(),
            charge_cpu: false,
            seed: 1,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style latency override.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style cost-model override.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self.charge_cpu = true;
        self
    }

    /// Builder-style bandwidth override (bytes per second).
    pub fn with_bandwidth(mut self, bytes_per_sec: Option<u64>) -> Self {
        self.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Message { from: NodeId, msg: M },
    Timer { id: TimerId, generation: u64 },
    Inject { tx: Transaction },
}

#[derive(Debug)]
struct Event<M> {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation over a set of protocol nodes.
pub struct Simulation<P: Protocol> {
    config: SimConfig,
    nodes: Vec<P>,
    queue: BinaryHeap<Reverse<Event<P::Msg>>>,
    seq: u64,
    now: SimTime,
    nic_free: Vec<SimTime>,
    cores: Vec<Vec<SimTime>>,
    timers: HashMap<(NodeId, TimerId), u64>,
    link_order: HashMap<(NodeId, NodeId), SimTime>,
    deliveries: Vec<Vec<Delivery>>,
    delivery_times: Vec<Vec<SimTime>>,
    metrics: Metrics,
    adversary: Box<dyn Adversary<P::Msg>>,
    rng: DetRng,
    started: bool,
    events_processed: u64,
}

impl<P> Simulation<P>
where
    P: Protocol,
    P::Msg: WireSize,
{
    /// Creates a simulation over `nodes` with the no-fault adversary.
    pub fn new(config: SimConfig, nodes: Vec<P>) -> Self {
        Self::with_adversary(config, nodes, Box::new(PassThrough))
    }

    /// Creates a simulation with an explicit fault-injection hook.
    pub fn with_adversary(
        config: SimConfig,
        nodes: Vec<P>,
        adversary: Box<dyn Adversary<P::Msg>>,
    ) -> Self {
        let n = nodes.len();
        let cores = config.cost.cores.max(1);
        Simulation {
            rng: DetRng::seed_from_u64(config.seed),
            nodes,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            nic_free: vec![SimTime::ZERO; n],
            cores: vec![vec![SimTime::ZERO; cores]; n],
            timers: HashMap::new(),
            link_order: HashMap::new(),
            deliveries: vec![Vec::new(); n],
            delivery_times: vec![Vec::new(); n],
            metrics: Metrics::new(n),
            adversary,
            config,
            started: false,
            events_processed: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Shared access to a node's protocol state (for assertions in tests).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.as_usize()]
    }

    /// Mutable access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.as_usize()]
    }

    /// Blocks delivered (definitively decided, in order) at `node`.
    pub fn deliveries(&self, node: NodeId) -> &[Delivery] {
        &self.deliveries[node.as_usize()]
    }

    /// Virtual timestamps of `node`'s deliveries, parallel to
    /// [`Simulation::deliveries`] — the raw series behind the per-node
    /// delivery-timeline metrics (stall/recovery detection) in run reports.
    pub fn delivery_times(&self, node: NodeId) -> &[SimTime] {
        &self.delivery_times[node.as_usize()]
    }

    /// The metrics collector.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (to set measurement windows).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Convenience: build the run summary over all nodes for the elapsed time.
    pub fn summary(&mut self) -> RunSummary {
        self.metrics.set_window_end(self.now);
        self.metrics.summary(None)
    }

    /// Convenience: build the run summary restricted to `nodes`.
    pub fn summary_for(&mut self, nodes: &[NodeId]) -> RunSummary {
        self.metrics.set_window_end(self.now);
        self.metrics.summary(Some(nodes))
    }

    /// Schedules a client transaction to arrive at `node` at absolute time
    /// `at`.
    pub fn inject_transaction_at(&mut self, node: NodeId, tx: Transaction, at: SimTime) {
        self.push_event(at, node, EventKind::Inject { tx });
    }

    /// Schedules a client transaction to arrive at `node` `delay` from now.
    pub fn inject_transaction(&mut self, node: NodeId, tx: Transaction, delay: Duration) {
        self.inject_transaction_at(node, tx, self.now + delay);
    }

    /// Calls `on_start` on every node (idempotent; called automatically by the
    /// run methods if needed).
    ///
    /// `on_start` runs even for a node the adversary reports as crashed at
    /// t = 0: its outputs are suppressed anyway (sends are intercepted and
    /// dropped, its timer events are skipped while it is down), but a node
    /// with a crash-*recover* window covering the start must come back with
    /// initialized state — the real-time runtimes behave the same way, as
    /// their node threads always run `on_start` before any pause or crash
    /// event lands.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node_id = NodeId(i as u32);
            let mut out = Outbox::new();
            self.nodes[i].on_start(&mut out);
            self.apply_actions(node_id, self.now, out);
        }
    }

    /// Kill-restarts `node` at the current virtual time: the old protocol
    /// state machine is handed to `rebuild`, which must drop it (closing
    /// its durable store, if any) and return the restarted node — typically
    /// reconstructed from disk. The node's delivery log is cleared (a
    /// killed process's history is whatever its disk can prove), every
    /// pending timer of the node is invalidated through the generation
    /// counters, and the new state machine's `on_start` runs at `now`.
    ///
    /// Determinism is preserved: the restart is itself a deterministic
    /// function of the virtual time it runs at, and store I/O never feeds
    /// back into event timing.
    pub fn restart_node(&mut self, id: NodeId, rebuild: impl FnOnce(P) -> P) {
        let i = id.as_usize();
        // Invalidate the old node's pending timers: bump every generation
        // counter so in-flight timer events arrive stale and are skipped.
        for ((node, _), generation) in self.timers.iter_mut() {
            if *node == id {
                *generation += 1;
            }
        }
        self.deliveries[i].clear();
        self.delivery_times[i].clear();
        // Replace the state machine in place. `rebuild` receives the old
        // value by move so it can drop it *before* reopening the store
        // directory (the swap-remove / push / swap dance moves it out of
        // the vector without needing a placeholder value).
        let old = self.nodes.swap_remove(i);
        self.nodes.push(rebuild(old));
        let last = self.nodes.len() - 1;
        self.nodes.swap(i, last);
        let mut out = Outbox::new();
        self.nodes[i].on_start(&mut out);
        self.apply_actions(id, self.now, out);
    }

    fn push_event(&mut self, time: SimTime, node: NodeId, kind: EventKind<P::Msg>) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            node,
            kind,
        }));
    }

    fn schedule_cpu(&mut self, node: NodeId, ready: SimTime, work: Duration) -> SimTime {
        let cores = &mut self.cores[node.as_usize()];
        // Earliest-available core.
        let (idx, _) = cores
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one core");
        let start = cores[idx].max(ready);
        let end = start + work;
        cores[idx] = end;
        end
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: P::Msg, ready: SimTime) {
        if from == to {
            // Self-sends short-circuit the network.
            self.push_event(ready, to, EventKind::Message { from, msg });
            return;
        }
        match self.adversary.intercept(from, to, msg, ready) {
            Fate::Deliver(m) => self.transmit(from, to, m, ready, Duration::ZERO, true),
            Fate::DeliverDelayed(m, d) => self.transmit(from, to, m, ready, d, true),
            // Reordered messages skip the per-link FIFO clamp, so later
            // sends on the same link can overtake them.
            Fate::DeliverReordered(m, d) => self.transmit(from, to, m, ready, d, false),
            Fate::DeliverDuplicated(m, d) => {
                self.transmit(from, to, m.clone(), ready, Duration::ZERO, true);
                // The duplicate is a real second copy: it pays NIC bandwidth
                // and is counted in the send metrics like any message. It is
                // FIFO-exempt like a reordered message — on the real-time
                // runtimes the copy rides the delay line past the writer
                // queue, so it must not ratchet the link's FIFO clamp here
                // and lag every subsequent message behind it.
                self.transmit(from, to, m, ready, d, false);
            }
            Fate::Drop => {}
        }
    }

    /// Charges one wire copy against the sender's NIC, samples the link
    /// latency, applies `extra_delay`, optionally enforces per-link FIFO
    /// order, and schedules the arrival.
    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        ready: SimTime,
        extra_delay: Duration,
        fifo: bool,
    ) {
        let size = msg.wire_size();
        let departure = self.nic_free[from.as_usize()].max(ready);
        let tx_time = match self.config.bandwidth_bytes_per_sec {
            Some(bw) if bw > 0 => Duration::from_secs_f64(size as f64 / bw as f64),
            _ => Duration::ZERO,
        };
        let sent = departure + tx_time;
        self.nic_free[from.as_usize()] = sent;
        let latency = self.config.latency.sample(from, to, &mut self.rng);
        let mut arrival = sent + latency + extra_delay;
        if fifo {
            // Enforce per-link FIFO (reliable ordered links, §3.1).
            let last = self.link_order.entry((from, to)).or_insert(SimTime::ZERO);
            arrival = arrival.max(*last);
            *last = arrival;
        }
        self.metrics.record_send(from, size, ready);
        self.push_event(arrival, to, EventKind::Message { from, msg });
    }

    fn apply_actions(&mut self, node: NodeId, start: SimTime, mut out: Outbox<P::Msg>) {
        let mut eff = start;
        let actions: Vec<Action<P::Msg>> = out.drain().collect();
        for action in actions {
            match action {
                Action::Cpu(charge) => {
                    if self.config.charge_cpu {
                        let work = self.config.cost.charge_time(
                            charge.signs,
                            charge.verifies,
                            charge.hashed_bytes,
                        );
                        if !work.is_zero() {
                            eff = self.schedule_cpu(node, eff, work);
                        }
                    }
                    self.metrics
                        .record_cpu(node, charge.signs, charge.verifies, eff);
                }
                Action::Send { to, msg } => self.send(node, to, msg, eff),
                Action::Broadcast { msg } => {
                    let n = self.nodes.len();
                    for i in 0..n {
                        let to = NodeId(i as u32);
                        if to != node {
                            self.send(node, to, msg.clone(), eff);
                        }
                    }
                }
                Action::SetTimer { id, delay } => {
                    let generation = self.timers.entry((node, id)).or_insert(0);
                    *generation += 1;
                    let generation = *generation;
                    self.push_event(eff + delay, node, EventKind::Timer { id, generation });
                }
                Action::CancelTimer { id } => {
                    if let Some(generation) = self.timers.get_mut(&(node, id)) {
                        *generation += 1;
                    }
                }
                Action::Deliver(delivery) => {
                    self.deliveries[node.as_usize()].push(delivery);
                    self.delivery_times[node.as_usize()].push(eff);
                }
                Action::Observe(obs) => {
                    self.metrics.record(node, eff, &obs);
                }
            }
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.time);
        self.events_processed += 1;
        let node = event.node;
        if self.adversary.is_crashed(node, self.now) {
            return true;
        }
        match event.kind {
            EventKind::Message { from, msg } => {
                let mut out = Outbox::new();
                self.nodes[node.as_usize()].on_message(from, msg, &mut out);
                self.apply_actions(node, event.time, out);
            }
            EventKind::Timer { id, generation } => {
                let current = self.timers.get(&(node, id)).copied().unwrap_or(0);
                if current == generation {
                    let mut out = Outbox::new();
                    self.nodes[node.as_usize()].on_timer(id, &mut out);
                    self.apply_actions(node, event.time, out);
                }
            }
            EventKind::Inject { tx } => {
                let mut out = Outbox::new();
                self.nodes[node.as_usize()].on_transaction(tx, &mut out);
                self.apply_actions(node, event.time, out);
            }
        }
        true
    }

    /// Runs until virtual time `deadline` (or the queue drains).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.time > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for `duration` of virtual time from the current instant.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Runs until the event queue is completely drained (useful for tests
    /// with a bounded number of rounds) or `max_events` is reached.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        self.start();
        let limit = self.events_processed + max_events;
        while self.events_processed < limit && self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Observation;
    use fireledger_types::{Round, WorkerId};

    /// A toy protocol: node 0 broadcasts a counter on start and whenever its
    /// timer fires; every node records what it received and echoes to the
    /// sender. Used to exercise the engine itself.
    #[derive(Debug)]
    struct Echo {
        id: NodeId,
        received: Vec<(NodeId, u64)>,
        rounds: u64,
        max_rounds: u64,
    }

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            1000
        }
    }

    impl Protocol for Echo {
        type Msg = Num;
        fn node_id(&self) -> NodeId {
            self.id
        }
        fn on_start(&mut self, out: &mut Outbox<Num>) {
            if self.id == NodeId(0) {
                out.broadcast(Num(0));
                out.set_timer(TimerId(1), Duration::from_millis(10));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Num, out: &mut Outbox<Num>) {
            self.received.push((from, msg.0));
            if self.id != NodeId(0) {
                out.send(from, Num(msg.0 + 100));
            }
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<Num>) {
            self.rounds += 1;
            if self.rounds < self.max_rounds {
                out.broadcast(Num(self.rounds));
                out.set_timer(TimerId(1), Duration::from_millis(10));
            }
            out.observe(Observation::TentativeDecision {
                worker: WorkerId(0),
                round: Round(self.rounds),
            });
        }
        fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<Num>) {
            out.broadcast(Num(1000 + tx.seq));
        }
    }

    fn echo_cluster(n: usize, max_rounds: u64) -> Vec<Echo> {
        (0..n)
            .map(|i| Echo {
                id: NodeId(i as u32),
                received: Vec::new(),
                rounds: 0,
                max_rounds,
            })
            .collect()
    }

    #[test]
    fn messages_flow_and_echo_back() {
        let mut sim = Simulation::new(SimConfig::ideal(), echo_cluster(4, 1));
        sim.run_for(Duration::from_millis(100));
        // Nodes 1..3 received the initial broadcast.
        for i in 1..4u32 {
            assert!(sim
                .node(NodeId(i))
                .received
                .iter()
                .any(|(f, v)| *f == NodeId(0) && *v == 0));
        }
        // Node 0 received echoes from everyone.
        let echoes: Vec<_> = sim
            .node(NodeId(0))
            .received
            .iter()
            .filter(|(_, v)| *v == 100)
            .collect();
        assert_eq!(echoes.len(), 3);
    }

    #[test]
    fn timers_fire_and_can_be_superseded() {
        let mut sim = Simulation::new(SimConfig::ideal(), echo_cluster(4, 5));
        sim.run_for(Duration::from_millis(200));
        assert_eq!(sim.node(NodeId(0)).rounds, 5);
    }

    #[test]
    fn executions_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim =
                Simulation::new(SimConfig::single_dc().with_seed(seed), echo_cluster(4, 10));
            sim.run_for(Duration::from_millis(500));
            (
                sim.events_processed(),
                sim.node(NodeId(0)).received.clone(),
                sim.now(),
            )
        };
        assert_eq!(run(7), run(7));
        // A different seed changes latencies and hence (usually) arrival order.
        let (a, _, _) = run(7);
        let (b, _, _) = run(8);
        assert_eq!(a, b, "event counts should match even if order differs");
    }

    #[test]
    fn bandwidth_limits_serialize_broadcasts() {
        // 1000-byte messages over a 1 MB/s NIC → 1 ms per copy; broadcasting to
        // 3 peers costs 3 ms of egress serialization, so the last arrival is
        // later than with infinite bandwidth.
        let slow = SimConfig::ideal().with_bandwidth(Some(1_000_000));
        let mut sim = Simulation::new(slow, echo_cluster(4, 1));
        sim.run_for(Duration::from_millis(50));
        let m = sim.metrics().node_counters();
        assert_eq!(m[0].msgs_sent, 3);
        assert_eq!(m[0].bytes_sent, 3000);
        // Echo replies arrive after ≥ 3 ms + 2 * latency.
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn cpu_charges_delay_subsequent_sends() {
        #[derive(Debug)]
        struct Cpu {
            id: NodeId,
            got_at: Option<SimTime>,
        }
        #[derive(Clone, Debug)]
        struct M;
        impl WireSize for M {
            fn wire_size(&self) -> usize {
                10
            }
        }
        impl Protocol for Cpu {
            type Msg = M;
            fn node_id(&self) -> NodeId {
                self.id
            }
            fn on_start(&mut self, out: &mut Outbox<M>) {
                if self.id == NodeId(0) {
                    // 10 signatures at 900 µs each ≈ 9 ms of CPU before the send.
                    out.cpu(fireledger_types::runtime::CpuCharge {
                        signs: 10,
                        verifies: 0,
                        hashed_bytes: 0,
                    });
                    out.broadcast(M);
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: M, _out: &mut Outbox<M>) {
                self.got_at = Some(SimTime::ZERO); // marker; real time checked via sim.now()
            }
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<M>) {}
        }
        let nodes = vec![
            Cpu {
                id: NodeId(0),
                got_at: None,
            },
            Cpu {
                id: NodeId(1),
                got_at: None,
            },
            Cpu {
                id: NodeId(2),
                got_at: None,
            },
            Cpu {
                id: NodeId(3),
                got_at: None,
            },
        ];
        let cfg = SimConfig {
            latency: LatencyModel::Constant(Duration::from_millis(1)),
            bandwidth_bytes_per_sec: None,
            cost: CostModel::m5_xlarge(),
            charge_cpu: true,
            seed: 1,
        };
        let mut sim = Simulation::new(cfg, nodes);
        sim.run_to_quiescence(100);
        // The broadcast could only arrive after ~9 ms CPU + 1 ms latency.
        assert!(sim.now() >= SimTime::from_millis(9));
        assert_eq!(sim.metrics().node_counters()[0].signatures, 10);
    }

    #[test]
    fn injected_transactions_reach_protocols() {
        let mut sim = Simulation::new(SimConfig::ideal(), echo_cluster(4, 1));
        sim.inject_transaction(
            NodeId(2),
            Transaction::zeroed(9, 77, 8),
            Duration::from_millis(5),
        );
        sim.run_for(Duration::from_millis(50));
        // Node 2 broadcast 1000 + 77; everyone else received it.
        assert!(sim
            .node(NodeId(0))
            .received
            .iter()
            .any(|(f, v)| *f == NodeId(2) && *v == 1077));
    }

    #[test]
    fn crashed_nodes_neither_send_nor_receive() {
        use crate::adversary::CrashSchedule;
        let adv = CrashSchedule::new().crash(NodeId(0), SimTime::ZERO);
        let mut sim =
            Simulation::with_adversary(SimConfig::ideal(), echo_cluster(4, 3), Box::new(adv));
        sim.run_for(Duration::from_millis(100));
        // Node 0 crashed before start: nobody received anything from it.
        for i in 1..4u32 {
            assert!(sim.node(NodeId(i)).received.is_empty());
        }
    }

    #[test]
    fn crash_recover_window_covering_start_still_initializes_the_node() {
        use crate::adversary::PlanAdversary;
        use fireledger_types::FaultPlan;
        // Node 0 is down from t = 0 to t = 5 ms. Its on_start broadcast is
        // suppressed (it is down when it would send), but the timer armed in
        // on_start fires at 10 ms — after recovery — so its round-1
        // broadcast must reach everyone. Before the fix, a downtime window
        // covering t = 0 skipped on_start entirely and the node stayed
        // inert forever.
        let plan = FaultPlan::named("boot-churn").crash_recover(
            NodeId(0),
            Duration::ZERO,
            Duration::from_millis(5),
        );
        let adv = PlanAdversary::new(plan, crate::adversary::CrashSchedule::new());
        let mut sim =
            Simulation::with_adversary(SimConfig::ideal(), echo_cluster(4, 3), Box::new(adv));
        sim.run_for(Duration::from_millis(100));
        // The start broadcast (value 0) was lost to the downtime...
        for i in 1..4u32 {
            assert!(
                !sim.node(NodeId(i)).received.iter().any(|(_, v)| *v == 0),
                "node {i} received a broadcast sent while the sender was down"
            );
        }
        // ...but the post-recovery timer broadcasts arrived.
        for i in 1..4u32 {
            assert!(
                sim.node(NodeId(i)).received.iter().any(|(_, v)| *v >= 1),
                "node {i} never heard from the recovered node"
            );
        }
    }

    #[test]
    fn observations_reach_metrics() {
        let mut sim = Simulation::new(SimConfig::ideal(), echo_cluster(4, 2));
        sim.run_for(Duration::from_millis(100));
        // Timer observations were recorded as tentative decisions.
        assert!(!sim.metrics().lifecycles().is_empty());
        let s = sim.summary();
        assert!(s.msgs_sent > 0);
    }

    #[test]
    fn run_until_advances_time_even_without_events() {
        let mut sim = Simulation::new(SimConfig::ideal(), echo_cluster(4, 1));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }
}
