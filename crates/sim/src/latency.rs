//! Link-latency models.
//!
//! The paper evaluates FLO in two network settings (§7.2, §7.5):
//!
//! * a **single data-center** cluster of m5.xlarge VMs — sub-millisecond
//!   latency, up-to-10 Gbps links;
//! * a **geo-distributed** cluster with one node in each of ten AWS regions
//!   (Tokyo, Canada Central, Frankfurt, Paris, São Paulo, Oregon, Singapore,
//!   Sydney, Ireland, Ohio).
//!
//! [`LatencyModel`] covers both, plus simple constant/jittered models used by
//! unit tests and property tests.

use std::time::Duration;

use fireledger_types::{DetRng, NodeId};

/// One of the ten AWS regions used by the paper's geo-distributed deployment
/// (§7.5), in the paper's placement order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// ap-northeast-1
    Tokyo,
    /// ca-central-1
    Canada,
    /// eu-central-1
    Frankfurt,
    /// eu-west-3
    Paris,
    /// sa-east-1
    SaoPaulo,
    /// us-west-2
    Oregon,
    /// ap-southeast-1
    Singapore,
    /// ap-southeast-2
    Sydney,
    /// eu-west-1
    Ireland,
    /// us-east-2
    Ohio,
}

impl Region {
    /// The paper's placement order: node `i` lives in `PLACEMENT[i % 10]`.
    pub const PLACEMENT: [Region; 10] = [
        Region::Tokyo,
        Region::Canada,
        Region::Frankfurt,
        Region::Paris,
        Region::SaoPaulo,
        Region::Oregon,
        Region::Singapore,
        Region::Sydney,
        Region::Ireland,
        Region::Ohio,
    ];

    /// Index of the region inside [`Region::PLACEMENT`].
    pub fn index(self) -> usize {
        Region::PLACEMENT
            .iter()
            .position(|r| *r == self)
            .expect("region is in placement")
    }
}

/// A symmetric matrix of one-way latencies between the ten regions.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoMatrix {
    /// `one_way_ms[i][j]` = one-way latency in milliseconds between region
    /// `i` and region `j` of [`Region::PLACEMENT`].
    pub one_way_ms: Vec<Vec<f64>>,
}

impl GeoMatrix {
    /// Approximate AWS inter-region one-way latencies (half of the publicly
    /// reported RTTs, rounded), in the paper's placement order.
    pub fn aws_default() -> Self {
        // Row/column order: Tokyo, Canada, Frankfurt, Paris, SaoPaulo,
        //                   Oregon, Singapore, Sydney, Ireland, Ohio
        let m: Vec<Vec<f64>> = vec![
            //      Tok   Can   Fra   Par   Sao   Ore   Sin   Syd   Irl   Ohi
            vec![
                0.5, 72.0, 112.0, 108.0, 128.0, 49.0, 35.0, 52.0, 103.0, 78.0,
            ], // Tokyo
            vec![72.0, 0.5, 46.0, 42.0, 62.0, 30.0, 108.0, 100.0, 33.0, 13.0], // Canada
            vec![112.0, 46.0, 0.5, 5.0, 102.0, 79.0, 81.0, 144.0, 13.0, 49.0], // Frankfurt
            vec![108.0, 42.0, 5.0, 0.5, 97.0, 70.0, 84.0, 140.0, 9.0, 45.0],   // Paris
            vec![
                128.0, 62.0, 102.0, 97.0, 0.5, 89.0, 163.0, 158.0, 92.0, 65.0,
            ], // SaoPaulo
            vec![49.0, 30.0, 79.0, 70.0, 89.0, 0.5, 82.0, 69.0, 62.0, 25.0],   // Oregon
            vec![35.0, 108.0, 81.0, 84.0, 163.0, 82.0, 0.5, 46.0, 87.0, 101.0], // Singapore
            vec![
                52.0, 100.0, 144.0, 140.0, 158.0, 69.0, 46.0, 0.5, 130.0, 96.0,
            ], // Sydney
            vec![103.0, 33.0, 13.0, 9.0, 92.0, 62.0, 87.0, 130.0, 0.5, 40.0],  // Ireland
            vec![78.0, 13.0, 49.0, 45.0, 65.0, 25.0, 101.0, 96.0, 40.0, 0.5],  // Ohio
        ];
        GeoMatrix { one_way_ms: m }
    }

    /// One-way latency between the regions hosting nodes `a` and `b`, where
    /// node `i` is placed in region `i % 10` (the paper places exactly one
    /// node per region for n = 10; for n < 10 a prefix of the placement is
    /// used, for n > 10 the placement wraps around).
    pub fn latency(&self, a: NodeId, b: NodeId) -> Duration {
        let i = a.as_usize() % self.one_way_ms.len();
        let j = b.as_usize() % self.one_way_ms.len();
        Duration::from_secs_f64(self.one_way_ms[i][j] / 1000.0)
    }
}

/// The latency model applied to each message.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// A constant one-way delay on every link.
    Constant(Duration),
    /// Uniformly distributed delay in `[min, max]` drawn per message.
    Uniform {
        /// Lower bound.
        min: Duration,
        /// Upper bound.
        max: Duration,
    },
    /// Single data-center: a small base latency plus a relative jitter drawn
    /// per message (models the "non-dedicated virtual machines and network"
    /// of §1).
    SingleDc {
        /// Base one-way latency (default 250 µs).
        base: Duration,
        /// Maximal additional jitter as a fraction of the base (e.g. 0.5).
        jitter: f64,
    },
    /// Geo-distributed deployment using a region latency matrix plus a small
    /// relative jitter.
    Geo {
        /// The region-to-region matrix.
        matrix: GeoMatrix,
        /// Maximal additional jitter as a fraction of the base.
        jitter: f64,
    },
}

impl LatencyModel {
    /// A typical single data-center model (≈ 250 µs ± 50%).
    pub fn single_dc() -> Self {
        LatencyModel::SingleDc {
            base: Duration::from_micros(250),
            jitter: 0.5,
        }
    }

    /// The paper's ten-region geo-distributed model with 10% jitter.
    pub fn geo_distributed() -> Self {
        LatencyModel::Geo {
            matrix: GeoMatrix::aws_default(),
            jitter: 0.1,
        }
    }

    /// Samples the one-way latency for a message from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    *min
                } else {
                    let span = (*max - *min).as_nanos() as u64;
                    *min + Duration::from_nanos(rng.gen_range_inclusive(0, span))
                }
            }
            LatencyModel::SingleDc { base, jitter } => {
                let j = rng.gen_f64() * *jitter;
                base.mul_f64(1.0 + j)
            }
            LatencyModel::Geo { matrix, jitter } => {
                let base = matrix.latency(from, to);
                let j = rng.gen_f64() * *jitter;
                base.mul_f64(1.0 + j)
            }
        }
    }

    /// An upper bound on the latency this model can produce between any pair
    /// of nodes (useful for choosing protocol timeouts in experiments).
    pub fn upper_bound(&self) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { max, .. } => *max,
            LatencyModel::SingleDc { base, jitter } => base.mul_f64(1.0 + jitter),
            LatencyModel::Geo { matrix, jitter } => {
                let max_ms = matrix
                    .one_way_ms
                    .iter()
                    .flatten()
                    .cloned()
                    .fold(0.0_f64, f64::max);
                Duration::from_secs_f64(max_ms / 1000.0).mul_f64(1.0 + jitter)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_matrix_is_square_and_symmetric() {
        let m = GeoMatrix::aws_default();
        assert_eq!(m.one_way_ms.len(), 10);
        for (i, row) in m.one_way_ms.iter().enumerate() {
            assert_eq!(row.len(), 10);
            for (j, v) in row.iter().enumerate() {
                assert!(
                    (*v - m.one_way_ms[j][i]).abs() < 1e-9,
                    "asymmetric at {i},{j}"
                );
                assert!(*v > 0.0);
            }
        }
    }

    #[test]
    fn region_placement_indices() {
        assert_eq!(Region::Tokyo.index(), 0);
        assert_eq!(Region::Ohio.index(), 9);
        assert_eq!(Region::PLACEMENT.len(), 10);
    }

    #[test]
    fn geo_latency_wraps_for_large_clusters() {
        let m = GeoMatrix::aws_default();
        assert_eq!(
            m.latency(NodeId(0), NodeId(10)),
            m.latency(NodeId(0), NodeId(0))
        );
        assert!(m.latency(NodeId(0), NodeId(4)) > Duration::from_millis(100));
    }

    #[test]
    fn constant_model_is_constant() {
        let mut rng = DetRng::seed_from_u64(1);
        let m = LatencyModel::Constant(Duration::from_millis(3));
        for _ in 0..10 {
            assert_eq!(
                m.sample(NodeId(0), NodeId(1), &mut rng),
                Duration::from_millis(3)
            );
        }
        assert_eq!(m.upper_bound(), Duration::from_millis(3));
    }

    #[test]
    fn uniform_model_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(2);
        let min = Duration::from_millis(1);
        let max = Duration::from_millis(5);
        let m = LatencyModel::Uniform { min, max };
        for _ in 0..100 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= min && d <= max);
        }
        assert_eq!(m.upper_bound(), max);
        // Degenerate range.
        let degenerate = LatencyModel::Uniform { min: max, max: min };
        assert_eq!(degenerate.sample(NodeId(0), NodeId(1), &mut rng), max);
    }

    #[test]
    fn single_dc_is_sub_millisecond() {
        let mut rng = DetRng::seed_from_u64(3);
        let m = LatencyModel::single_dc();
        for _ in 0..100 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= Duration::from_micros(250));
            assert!(d <= Duration::from_micros(380));
        }
    }

    #[test]
    fn geo_is_much_slower_than_single_dc() {
        let mut rng = DetRng::seed_from_u64(4);
        let geo = LatencyModel::geo_distributed();
        let dc = LatencyModel::single_dc();
        let g = geo.sample(NodeId(0), NodeId(4), &mut rng); // Tokyo ↔ São Paulo
        let d = dc.sample(NodeId(0), NodeId(4), &mut rng);
        assert!(g > d * 100);
        assert!(geo.upper_bound() > Duration::from_millis(150));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::single_dc();
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(
                m.sample(NodeId(0), NodeId(1), &mut a),
                m.sample(NodeId(0), NodeId(1), &mut b)
            );
        }
    }
}
