//! # fireledger-sim
//!
//! A deterministic discrete-event simulator that stands in for the paper's
//! AWS testbed (single data-center and geo-distributed m5.xlarge /
//! c5.4xlarge clusters).
//!
//! The simulator drives any [`fireledger_types::Protocol`] state machine and
//! models the three resources that bound the paper's results:
//!
//! * **link latency** — constant, jittered, or a per-region matrix of AWS
//!   inter-region delays ([`latency::LatencyModel`]);
//! * **per-node egress bandwidth** — every outgoing copy of a message
//!   serializes through the sender's NIC ([`engine::SimConfig`]);
//! * **per-node multi-core CPU** — cryptographic work reported by protocols
//!   through `CpuCharge` actions is charged against a set of cores using the
//!   calibrated [`fireledger_crypto::CostModel`].
//!
//! Executions are fully deterministic for a given seed, which makes the
//! simulator usable both for correctness tests (including property-based
//! tests over random schedules) and for the performance experiments in
//! `fireledger-bench`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod engine;
pub mod latency;
pub mod metrics;
pub mod time;
pub mod workload;

pub use adversary::{
    Adversary, CrashSchedule, Fate, LateJoinAdversary, PassThrough, PlanAdversary,
};
pub use engine::{SimConfig, Simulation};
pub use latency::{GeoMatrix, LatencyModel, Region};
pub use metrics::{BlockLifecycle, Metrics, RunSummary};
pub use time::SimTime;
pub use workload::TxInjector;
