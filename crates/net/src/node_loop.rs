//! The per-node event loop shared by every real-time runtime.
//!
//! Both the mpsc-backed [`crate::ThreadedCluster`] and the TCP-backed
//! [`crate::TcpCluster`] run the exact same loop on each node's thread: pull
//! the next [`NodeEvent`] from the node's inbox, hand it to the sans-IO
//! protocol state machine, and interpret the resulting
//! [`Action`]s. The only thing that differs between the runtimes
//! is how outbound messages leave the node — the [`Egress`] implementation.

use fireledger_types::{Action, Delivery, NodeId, Outbox, Protocol, TimerId, Transaction};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Events routed to a node's thread.
pub(crate) enum NodeEvent<M> {
    /// A protocol message from a peer.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A broadcast message whose value is shared across every recipient's
    /// queue: the sender allocates (or encodes) once and enqueues `n − 1`
    /// reference bumps. Receivers materialize their own copy on dequeue —
    /// and the last receiver takes the value without cloning at all.
    SharedMessage {
        /// The sending node.
        from: NodeId,
        /// The shared message.
        msg: Arc<M>,
    },
    /// A client transaction submitted to this node.
    Transaction(Transaction),
    /// Stop the node's thread.
    Shutdown,
}

/// How a node's outbound messages leave its thread.
///
/// Implementations capture the local node id, so `broadcast` excludes self.
pub(crate) trait Egress<M> {
    /// Delivers `msg` to `to` (a no-op for unknown or closed peers — the
    /// paper's benign-crash link model).
    fn send(&mut self, to: NodeId, msg: M);
    /// Delivers `msg` to every other node.
    fn broadcast(&mut self, msg: M);
}

/// The shared per-node delivery logs: every delivery is recorded together
/// with its wall-clock offset from the cluster's start, which is the raw
/// series behind the delivery-timeline (stall/recovery) metrics of run
/// reports.
pub(crate) struct DeliveryLog {
    start: Instant,
    entries: Mutex<Vec<Vec<(Delivery, Duration)>>>,
}

impl DeliveryLog {
    fn new(n: usize) -> Self {
        DeliveryLog {
            start: Instant::now(),
            entries: Mutex::new(vec![Vec::new(); n]),
        }
    }

    /// The instant offsets are measured from (also the time base of
    /// real-time fault plans).
    pub fn start(&self) -> Instant {
        self.start
    }

    fn record(&self, node: NodeId, delivery: Delivery) {
        let at = self.start.elapsed();
        self.entries.lock().expect("delivery log lock")[node.as_usize()].push((delivery, at));
    }
}

/// The cluster-plumbing state every real-time runtime needs: one event
/// channel per node, the shared delivery logs, and the crash/pause flags.
/// The runtime-specific cluster types wrap this and add only their transport
/// (join handles, sockets).
pub(crate) struct ClusterCore<M> {
    pub evt_senders: Vec<Sender<NodeEvent<M>>>,
    pub log: Arc<DeliveryLog>,
    pub crashed: Arc<Vec<AtomicBool>>,
    pub paused: Arc<Vec<AtomicBool>>,
}

impl<M> ClusterCore<M> {
    /// Creates the core for `n` nodes, handing back each node's event
    /// receiver for its thread.
    pub fn new(n: usize) -> (Self, Vec<Receiver<NodeEvent<M>>>) {
        let mut evt_senders = Vec::with_capacity(n);
        let mut evt_receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            evt_senders.push(tx);
            evt_receivers.push(rx);
        }
        (
            ClusterCore {
                evt_senders,
                log: Arc::new(DeliveryLog::new(n)),
                crashed: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
                paused: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
            },
            evt_receivers,
        )
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        let _ = self.evt_senders[node.as_usize()].send(NodeEvent::Transaction(tx));
    }

    /// Sets `node`'s crash flag and wakes its thread so the flag is seen
    /// before any queued event.
    pub fn crash(&self, node: NodeId) {
        self.crashed[node.as_usize()].store(true, Ordering::SeqCst);
        let _ = self.evt_senders[node.as_usize()].send(NodeEvent::Shutdown);
    }

    /// Pauses `node` (the crash half of a crash-recover fault): its thread
    /// keeps running but discards every event and expires timers silently
    /// until [`ClusterCore::resume`]. The flag is observed within the
    /// thread's poll interval (≤ ~10 ms).
    pub fn pause(&self, node: NodeId) {
        self.paused[node.as_usize()].store(true, Ordering::SeqCst);
    }

    /// Resumes a paused `node` with its protocol state intact.
    pub fn resume(&self, node: NodeId) {
        self.paused[node.as_usize()].store(false, Ordering::SeqCst);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.evt_senders.len()
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.log.entries.lock().expect("delivery log lock")[node.as_usize()]
            .iter()
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Wall-clock offsets (from cluster start) of `node`'s deliveries so
    /// far, parallel to [`ClusterCore::deliveries`].
    pub fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        self.log.entries.lock().expect("delivery log lock")[node.as_usize()]
            .iter()
            .map(|(_, at)| *at)
            .collect()
    }

    /// Asks every node thread to stop.
    pub fn signal_shutdown(&self) {
        for s in &self.evt_senders {
            let _ = s.send(NodeEvent::Shutdown);
        }
    }

    /// Consumes the core and returns the final per-node deliveries (callers
    /// join their node threads first, so the `Arc` is normally unique).
    pub fn take_deliveries(self) -> Vec<Vec<Delivery>> {
        let timed = Arc::try_unwrap(self.log)
            .map(|log| log.entries.into_inner().expect("delivery log lock"))
            .unwrap_or_else(|arc| arc.entries.lock().expect("delivery log lock").clone());
        timed
            .into_iter()
            .map(|ds| ds.into_iter().map(|(d, _)| d).collect())
            .collect()
    }
}

/// Runs one node until shutdown or crash: fires due timers, pulls events,
/// applies the protocol's actions through `egress`.
///
/// While the node's pause flag is set (the crash half of a crash-recover
/// fault), the loop keeps running but behaves like a dead node: incoming
/// events are discarded and timers whose deadline passes expire silently —
/// the exact semantics the simulator gives a node inside its downtime
/// window. On resume the protocol state is intact and the node reacts to
/// fresh traffic again.
///
/// The `Outbox` and the due-timer scratch are allocated once and reused for
/// every event, so the steady-state loop itself allocates nothing.
pub(crate) fn run_node<P, E>(
    node: &mut P,
    me: NodeId,
    rx: Receiver<NodeEvent<P::Msg>>,
    egress: &mut E,
    log: Arc<DeliveryLog>,
    crashed: Arc<Vec<AtomicBool>>,
    paused: Arc<Vec<AtomicBool>>,
) where
    P: Protocol,
    P::Msg: Clone,
    E: Egress<P::Msg>,
{
    let mut timers: HashMap<TimerId, Instant> = HashMap::new();
    let mut out = Outbox::new();
    let mut due: Vec<TimerId> = Vec::new();
    node.on_start(&mut out);
    apply(me, &mut out, egress, &mut timers, &log);

    loop {
        // A crash flag beats everything in the queue: a crashed node must not
        // drain its backlog before going silent.
        if crashed[me.as_usize()].load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        if paused[me.as_usize()].load(Ordering::SeqCst) {
            // Down: timers that come due expire into the void.
            timers.retain(|_, deadline| *deadline > now);
        } else {
            // Fire any due timers.
            due.clear();
            due.extend(
                timers
                    .iter()
                    .filter(|(_, deadline)| **deadline <= now)
                    .map(|(id, _)| *id),
            );
            for id in due.drain(..) {
                timers.remove(&id);
                node.on_timer(id, &mut out);
                apply(me, &mut out, egress, &mut timers, &log);
            }
        }
        // Wait for the next event or the next timer deadline.
        let next_deadline = timers.values().min().copied();
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(event) => {
                // Re-check after every dequeue: a crash that lands while the
                // thread is parked must beat the event it woke up for.
                if crashed[me.as_usize()].load(Ordering::SeqCst) {
                    return;
                }
                if paused[me.as_usize()].load(Ordering::SeqCst) {
                    // Down: the event is lost, like a message addressed to a
                    // crashed node. Shutdown still wins.
                    if matches!(event, NodeEvent::Shutdown) {
                        return;
                    }
                    continue;
                }
                match event {
                    NodeEvent::Message { from, msg } => {
                        node.on_message(from, msg, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::SharedMessage { from, msg } => {
                        // The last receiver of a broadcast takes the value
                        // without cloning; earlier receivers clone out of
                        // the shared allocation.
                        let msg = Arc::try_unwrap(msg).unwrap_or_else(|arc| (*arc).clone());
                        node.on_message(from, msg, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::Transaction(tx) => {
                        node.on_transaction(tx, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::Shutdown => return,
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn apply<M, E: Egress<M>>(
    me: NodeId,
    out: &mut Outbox<M>,
    egress: &mut E,
    timers: &mut HashMap<TimerId, Instant>,
    log: &Arc<DeliveryLog>,
) {
    for action in out.drain() {
        match action {
            Action::Send { to, msg } => egress.send(to, msg),
            Action::Broadcast { msg } => egress.broadcast(msg),
            Action::SetTimer { id, delay } => {
                timers.insert(id, Instant::now() + delay);
            }
            Action::CancelTimer { id } => {
                timers.remove(&id);
            }
            Action::Deliver(d) => log.record(me, d),
            // Real time: the CPU cost is paid by actually executing the
            // crypto; observations are only collected by the simulator.
            Action::Cpu(_) | Action::Observe(_) => {}
        }
    }
}
