//! The per-node event loop shared by every real-time runtime.
//!
//! Both the mpsc-backed [`crate::ThreadedCluster`] and the TCP-backed
//! [`crate::TcpCluster`] run the exact same loop on each node's thread: pull
//! the next [`NodeEvent`] from the node's inbox, hand it to the sans-IO
//! protocol state machine, and interpret the resulting
//! [`Action`]s. The only thing that differs between the runtimes
//! is how outbound messages leave the node — the [`Egress`] implementation.

use fireledger_types::{Action, Delivery, NodeId, Outbox, Protocol, TimerId, Transaction};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Events routed to a node's thread.
pub(crate) enum NodeEvent<M> {
    /// A protocol message from a peer.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A broadcast message whose value is shared across every recipient's
    /// queue: the sender allocates (or encodes) once and enqueues `n − 1`
    /// reference bumps. Receivers materialize their own copy on dequeue —
    /// and the last receiver takes the value without cloning at all.
    SharedMessage {
        /// The sending node.
        from: NodeId,
        /// The shared message.
        msg: Arc<M>,
    },
    /// A client transaction submitted to this node.
    Transaction(Transaction),
    /// Stop the node's thread.
    Shutdown,
}

/// How a node's outbound messages leave its thread.
///
/// Implementations capture the local node id, so `broadcast` excludes self.
pub(crate) trait Egress<M> {
    /// Delivers `msg` to `to` (a no-op for unknown or closed peers — the
    /// paper's benign-crash link model).
    fn send(&mut self, to: NodeId, msg: M);
    /// Delivers `msg` to every other node.
    fn broadcast(&mut self, msg: M);
}

/// What a [`PreVerify`] hook decided about one inbound message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Hand the message to the node loop (possibly with verification
    /// verdicts memoized on its values).
    Forward,
    /// Discard the message before it reaches the loop — reserved for
    /// messages the protocol could never *accept* (an invalid signature, a
    /// body that does not match its announced digest). For signature
    /// rejects the outcome is observably identical to in-loop rejection;
    /// for mismatched bodies the drop is strictly stronger: the in-loop
    /// path stores bodies first-wins before validating them, so a junk
    /// body can occupy its announced hash's slot, while the stage keeps
    /// the slot free for the genuine body.
    Drop,
}

/// An inbound-message verification hook, run *off* the consensus loop.
///
/// When a cluster is spawned with a pre-verifier, every node gets a
/// dedicated stage thread between its ingress channel and its event loop
/// (the `PreVerify` stage of `node_loop`): inbound events are drained in
/// batches, shared broadcast values are materialized, and `check_batch`
/// validates the expensive cryptographic content — seeding compute-once
/// memos on the message values (signature verdicts, payload roots) so the
/// loop consumes already-validated messages. The paper's FLO pipelining
/// story realized at the runtime layer: the consensus thread stays nearly
/// crypto-free even while the crypto is genuinely being paid.
///
/// Implementations must be pure with respect to the message: the same
/// message yields the same verdict, and `Drop` is only allowed where the
/// protocol's own handling of the message is an unconditional reject.
pub trait PreVerify<M>: Send + Sync {
    /// Verifies one message from `from`.
    fn check(&self, from: NodeId, msg: &M) -> Verdict;

    /// Verifies a batch, one verdict per item in order. The default just
    /// loops; implementations with a batch crypto executor override this to
    /// amortize fan-out across the whole drained batch.
    fn check_batch(&self, items: &[(NodeId, &M)]) -> Vec<Verdict> {
        items
            .iter()
            .map(|(from, msg)| self.check(*from, msg))
            .collect()
    }
}

/// Upper bound on events one stage drain batches together: bounds latency
/// and the batch vector while still amortizing the batch-verify fan-out.
const STAGE_BATCH: usize = 64;

/// Runs one node's pre-verify stage: drain the ingress channel, materialize
/// shared broadcast values, batch-verify, forward survivors in order.
/// Returns when the ingress disconnects, the loop side hangs up, or a
/// shutdown event passes through.
fn run_preverify_stage<M>(
    rx: Receiver<NodeEvent<M>>,
    tx: Sender<NodeEvent<M>>,
    pv: Arc<dyn PreVerify<M>>,
) where
    M: Clone + Send + Sync + 'static,
{
    // Materialize a shared broadcast into an owned message — the same
    // last-receiver-free rule the loop itself applies, just moved off-loop
    // (verdict memos seeded on the owned value survive the move into the
    // loop; they would not survive a clone).
    let materialize = |event: NodeEvent<M>| match event {
        NodeEvent::SharedMessage { from, msg } => NodeEvent::Message {
            from,
            msg: Arc::try_unwrap(msg).unwrap_or_else(|arc| (*arc).clone()),
        },
        other => other,
    };
    let mut batch: Vec<NodeEvent<M>> = Vec::with_capacity(STAGE_BATCH);
    loop {
        let Ok(first) = rx.recv() else {
            return;
        };
        batch.push(materialize(first));
        while batch.len() < STAGE_BATCH {
            match rx.try_recv() {
                Ok(event) => batch.push(materialize(event)),
                Err(_) => break,
            }
        }
        // One verification pass over the drained run of messages.
        let items: Vec<(NodeId, &M)> = batch
            .iter()
            .filter_map(|e| match e {
                NodeEvent::Message { from, msg } => Some((*from, msg)),
                _ => None,
            })
            .collect();
        let verdicts = if items.is_empty() {
            Vec::new()
        } else {
            let verdicts = pv.check_batch(&items);
            debug_assert_eq!(verdicts.len(), items.len());
            verdicts
        };
        let mut vi = 0;
        for event in batch.drain(..) {
            let forward = match &event {
                NodeEvent::Message { .. } => {
                    let v = verdicts.get(vi).copied().unwrap_or(Verdict::Forward);
                    vi += 1;
                    v == Verdict::Forward
                }
                _ => true,
            };
            let is_shutdown = matches!(event, NodeEvent::Shutdown);
            if forward && tx.send(event).is_err() {
                return;
            }
            if is_shutdown {
                return;
            }
        }
    }
}

/// Inserts a pre-verify stage thread in front of every node's event loop:
/// each returned receiver yields the stage's output; the original receivers
/// become the stages' inputs. The ingress senders (`ClusterCore::
/// evt_senders`) are untouched, so egress, submits, the fault delay line
/// and shutdown all flow through the stage transparently.
pub(crate) fn spawn_preverify_stages<M>(
    receivers: Vec<Receiver<NodeEvent<M>>>,
    pv: &Arc<dyn PreVerify<M>>,
) -> (
    Vec<Receiver<NodeEvent<M>>>,
    Vec<std::thread::JoinHandle<()>>,
)
where
    M: Clone + Send + Sync + 'static,
{
    let mut staged = Vec::with_capacity(receivers.len());
    let mut handles = Vec::with_capacity(receivers.len());
    for rx in receivers {
        let (stage_tx, stage_rx) = channel();
        let pv = pv.clone();
        handles.push(std::thread::spawn(move || {
            run_preverify_stage(rx, stage_tx, pv);
        }));
        staged.push(stage_rx);
    }
    (staged, handles)
}

/// The shared per-node delivery logs: every delivery is recorded together
/// with its wall-clock offset from the cluster's start, which is the raw
/// series behind the delivery-timeline (stall/recovery) metrics of run
/// reports.
pub(crate) struct DeliveryLog {
    start: Instant,
    entries: Mutex<Vec<Vec<(Delivery, Duration)>>>,
}

impl DeliveryLog {
    fn new(n: usize) -> Self {
        DeliveryLog {
            start: Instant::now(),
            entries: Mutex::new(vec![Vec::new(); n]),
        }
    }

    /// The instant offsets are measured from (also the time base of
    /// real-time fault plans).
    pub fn start(&self) -> Instant {
        self.start
    }

    fn record(&self, node: NodeId, delivery: Delivery) {
        let at = self.start.elapsed();
        self.entries.lock().expect("delivery log lock")[node.as_usize()].push((delivery, at));
    }

    /// Clears `node`'s recorded deliveries — a kill destroys the process,
    /// so its delivery log restarts empty; a node rebuilt from disk then
    /// re-emits its recovered prefix, and the post-restart log reads as the
    /// complete ledger from round 0.
    fn clear(&self, node: NodeId) {
        self.entries.lock().expect("delivery log lock")[node.as_usize()].clear();
    }
}

/// The cluster-plumbing state every real-time runtime needs: one event
/// channel per node, the shared delivery logs, and the crash/pause flags.
/// The runtime-specific cluster types wrap this and add only their transport
/// (join handles, sockets).
pub(crate) struct ClusterCore<M> {
    pub evt_senders: Vec<Sender<NodeEvent<M>>>,
    pub log: Arc<DeliveryLog>,
    pub crashed: Arc<Vec<AtomicBool>>,
    pub paused: Arc<Vec<AtomicBool>>,
    /// Kill flags: the node's thread drops its protocol state machine
    /// entirely (closing its durable store) and idles, discarding traffic.
    pub killed: Arc<Vec<AtomicBool>>,
    /// Restart requests: a killed node's thread rebuilds its protocol from
    /// the durable store and rejoins. Only honored while killed, and only
    /// on clusters spawned with a rebuild hook.
    pub restarts: Arc<Vec<AtomicBool>>,
    /// Availability mirror, written by each node's own loop (encoded as
    /// [`crate::NodeStatus`]): ingress admission reads it to answer
    /// `Syncing`/`Busy` instead of accepting work a down or catching-up
    /// node could lose.
    pub statuses: Arc<Vec<AtomicU8>>,
}

impl<M> ClusterCore<M> {
    /// Creates the core for `n` nodes, handing back each node's event
    /// receiver for its thread.
    pub fn new(n: usize) -> (Self, Vec<Receiver<NodeEvent<M>>>) {
        let mut evt_senders = Vec::with_capacity(n);
        let mut evt_receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            evt_senders.push(tx);
            evt_receivers.push(rx);
        }
        (
            ClusterCore {
                evt_senders,
                log: Arc::new(DeliveryLog::new(n)),
                crashed: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
                paused: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
                killed: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
                restarts: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
                statuses: Arc::new((0..n).map(|_| AtomicU8::new(0)).collect()),
            },
            evt_receivers,
        )
    }

    /// `node`'s availability mirror, as written by its own loop (a
    /// [`crate::NodeStatus`] encoding).
    pub fn status(&self, node: NodeId) -> u8 {
        self.statuses[node.as_usize()].load(Ordering::Acquire)
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        let _ = self.evt_senders[node.as_usize()].send(NodeEvent::Transaction(tx));
    }

    /// Sets `node`'s crash flag and wakes its thread so the flag is seen
    /// before any queued event.
    pub fn crash(&self, node: NodeId) {
        self.crashed[node.as_usize()].store(true, Ordering::SeqCst);
        let _ = self.evt_senders[node.as_usize()].send(NodeEvent::Shutdown);
    }

    /// Pauses `node` (the crash half of a crash-recover fault): its thread
    /// keeps running but discards every event and expires timers silently
    /// until [`ClusterCore::resume`]. The flag is observed within the
    /// thread's poll interval (≤ ~10 ms).
    pub fn pause(&self, node: NodeId) {
        self.paused[node.as_usize()].store(true, Ordering::SeqCst);
    }

    /// Resumes a paused `node` with its protocol state intact.
    pub fn resume(&self, node: NodeId) {
        self.paused[node.as_usize()].store(false, Ordering::SeqCst);
    }

    /// Kills `node`: its thread drops the protocol state machine — every
    /// in-memory structure is gone, its durable store (if any) is closed —
    /// and idles, discarding traffic. The node's delivery log is cleared by
    /// its own thread when it observes the flag (the thread is the log
    /// slot's only writer, so clearing there cannot race a final in-flight
    /// delivery): a killed process's history is whatever its disk can prove.
    pub fn kill(&self, node: NodeId) {
        self.killed[node.as_usize()].store(true, Ordering::SeqCst);
    }

    /// Requests that a killed `node` restart from its durable store. The
    /// flag is observed within the thread's poll interval; it is ignored on
    /// clusters spawned without a rebuild hook.
    pub fn restart(&self, node: NodeId) {
        self.restarts[node.as_usize()].store(true, Ordering::SeqCst);
    }

    /// Marks `node` dormant (a late-join entry) by pre-setting its kill
    /// flag. Called before the node threads spawn, so `run_node` observes
    /// the flag at entry and drops the state machine without ever starting
    /// it; a later [`ClusterCore::restart`] brings the node up mid-run.
    pub fn set_dormant(&self, node: NodeId) {
        self.killed[node.as_usize()].store(true, Ordering::SeqCst);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.evt_senders.len()
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.log.entries.lock().expect("delivery log lock")[node.as_usize()]
            .iter()
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Wall-clock offsets (from cluster start) of `node`'s deliveries so
    /// far, parallel to [`ClusterCore::deliveries`].
    pub fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        self.log.entries.lock().expect("delivery log lock")[node.as_usize()]
            .iter()
            .map(|(_, at)| *at)
            .collect()
    }

    /// Asks every node thread to stop.
    pub fn signal_shutdown(&self) {
        for s in &self.evt_senders {
            let _ = s.send(NodeEvent::Shutdown);
        }
    }

    /// Consumes the core and returns the final per-node deliveries (callers
    /// join their node threads first, so the `Arc` is normally unique).
    pub fn take_deliveries(self) -> Vec<Vec<Delivery>> {
        let timed = Arc::try_unwrap(self.log)
            .map(|log| log.entries.into_inner().expect("delivery log lock"))
            .unwrap_or_else(|arc| arc.entries.lock().expect("delivery log lock").clone());
        timed
            .into_iter()
            .map(|ds| ds.into_iter().map(|(d, _)| d).collect())
            .collect()
    }
}

/// The flag banks a node's thread watches, cloned out of [`ClusterCore`].
pub(crate) struct NodeFlags {
    pub crashed: Arc<Vec<AtomicBool>>,
    pub paused: Arc<Vec<AtomicBool>>,
    pub killed: Arc<Vec<AtomicBool>>,
    pub restarts: Arc<Vec<AtomicBool>>,
    pub statuses: Arc<Vec<AtomicU8>>,
}

impl<M> ClusterCore<M> {
    /// The flag banks a node loop needs.
    pub fn flags(&self) -> NodeFlags {
        NodeFlags {
            crashed: self.crashed.clone(),
            paused: self.paused.clone(),
            killed: self.killed.clone(),
            restarts: self.restarts.clone(),
            statuses: self.statuses.clone(),
        }
    }
}

/// Rebuilds a node's protocol state machine from its durable store after a
/// kill — installed per cluster by the runtime layer's builder.
pub(crate) type Rebuild<P> = Arc<dyn Fn(NodeId) -> P + Send + Sync>;

/// Runs one node until shutdown or crash: fires due timers, pulls events,
/// applies the protocol's actions through `egress`.
///
/// While the node's pause flag is set (the crash half of a crash-recover
/// fault), the loop keeps running but behaves like a dead node: incoming
/// events are discarded and timers whose deadline passes expire silently —
/// the exact semantics the simulator gives a node inside its downtime
/// window. On resume the protocol state is intact and the node reacts to
/// fresh traffic again.
///
/// A **kill** flag is the harsher fault: the loop drops the protocol value
/// itself — every in-memory structure is destroyed and its durable store
/// (if any) is closed by the drop — and idles like a dead node. The thread
/// and its transport stay up (the mesh is static; what "kill -9" destroys
/// is the protocol's process state, which is exactly what `P` holds). A
/// subsequent restart request rebuilds the node **solely from disk**
/// through the cluster's rebuild hook and re-enters it into the mesh.
///
/// The `Outbox` and the due-timer scratch are allocated once and reused for
/// every event, so the steady-state loop itself allocates nothing.
pub(crate) fn run_node<P, E>(
    node: P,
    me: NodeId,
    rx: Receiver<NodeEvent<P::Msg>>,
    egress: &mut E,
    log: Arc<DeliveryLog>,
    flags: NodeFlags,
    rebuild: Option<Rebuild<P>>,
) where
    P: Protocol,
    P::Msg: Clone,
    E: Egress<P::Msg>,
{
    let i = me.as_usize();
    let mut timers: HashMap<TimerId, Instant> = HashMap::new();
    let mut out = Outbox::new();
    let mut due: Vec<TimerId> = Vec::new();
    let mut alive: Option<P> = Some(node);
    if flags.killed[i].load(Ordering::SeqCst) {
        // Spawned dormant (a late-join entry pre-set the kill flag before
        // any thread started): drop the state machine without ever starting
        // it — closing its durable store, if any — and idle until a restart
        // request rebuilds the node mid-run.
        alive = None;
    } else {
        alive
            .as_mut()
            .expect("node starts alive")
            .on_start(&mut out);
        apply(me, &mut out, egress, &mut timers, &log);
    }

    loop {
        // A crash flag beats everything in the queue: a crashed node must not
        // drain its backlog before going silent.
        if flags.crashed[i].load(Ordering::SeqCst) {
            flags.statuses[i].store(2, Ordering::Release);
            return;
        }
        if flags.killed[i].load(Ordering::SeqCst) {
            if alive.is_some() {
                // Drop the whole state machine; the drop closes the durable
                // store, flushing its writer. (A *graceful* close — torn
                // tails come from the disk-fault injectors, not from Drop.)
                alive = None;
                timers.clear();
                // Clear the delivery log from this thread, after the final
                // event of the old incarnation: the restarted node re-emits
                // its recovered prefix, so the post-restart log reads as the
                // complete ledger from round 0.
                log.clear(me);
            }
            if flags.restarts[i].swap(false, Ordering::SeqCst) {
                if let Some(rebuild) = &rebuild {
                    let mut node = rebuild(me);
                    flags.killed[i].store(false, Ordering::SeqCst);
                    node.on_start(&mut out);
                    apply(me, &mut out, egress, &mut timers, &log);
                    alive = Some(node);
                }
            }
        }
        let now = Instant::now();
        let down = alive.is_none() || flags.paused[i].load(Ordering::SeqCst);
        // Mirror availability for the ingress layer: 2 down, 1 syncing,
        // 0 accepting (the `crate::NodeStatus` encoding). Written only by
        // this thread, so a plain store per iteration suffices.
        let status = if down {
            2
        } else if alive.as_ref().is_some_and(|n| n.is_syncing()) {
            1
        } else {
            0
        };
        flags.statuses[i].store(status, Ordering::Release);
        if down {
            // Down: timers that come due expire into the void.
            timers.retain(|_, deadline| *deadline > now);
        } else {
            // Fire any due timers.
            due.clear();
            due.extend(
                timers
                    .iter()
                    .filter(|(_, deadline)| **deadline <= now)
                    .map(|(id, _)| *id),
            );
            for id in due.drain(..) {
                timers.remove(&id);
                let node = alive.as_mut().expect("not down implies alive");
                node.on_timer(id, &mut out);
                apply(me, &mut out, egress, &mut timers, &log);
            }
        }
        // Wait for the next event or the next timer deadline.
        let next_deadline = timers.values().min().copied();
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(event) => {
                // Re-check after every dequeue: a crash that lands while the
                // thread is parked must beat the event it woke up for.
                if flags.crashed[i].load(Ordering::SeqCst) {
                    return;
                }
                if alive.is_none()
                    || flags.paused[i].load(Ordering::SeqCst)
                    || flags.killed[i].load(Ordering::SeqCst)
                {
                    // Down: the event is lost, like a message addressed to a
                    // crashed node. Shutdown still wins.
                    if matches!(event, NodeEvent::Shutdown) {
                        return;
                    }
                    continue;
                }
                let node = alive.as_mut().expect("checked above");
                match event {
                    NodeEvent::Message { from, msg } => {
                        node.on_message(from, msg, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::SharedMessage { from, msg } => {
                        // The last receiver of a broadcast takes the value
                        // without cloning; earlier receivers clone out of
                        // the shared allocation.
                        let msg = Arc::try_unwrap(msg).unwrap_or_else(|arc| (*arc).clone());
                        node.on_message(from, msg, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::Transaction(tx) => {
                        node.on_transaction(tx, &mut out);
                        apply(me, &mut out, egress, &mut timers, &log);
                    }
                    NodeEvent::Shutdown => return,
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn apply<M, E: Egress<M>>(
    me: NodeId,
    out: &mut Outbox<M>,
    egress: &mut E,
    timers: &mut HashMap<TimerId, Instant>,
    log: &Arc<DeliveryLog>,
) {
    for action in out.drain() {
        match action {
            Action::Send { to, msg } => egress.send(to, msg),
            Action::Broadcast { msg } => egress.broadcast(msg),
            Action::SetTimer { id, delay } => {
                timers.insert(id, Instant::now() + delay);
            }
            Action::CancelTimer { id } => {
                timers.remove(&id);
            }
            Action::Deliver(d) => log.record(me, d),
            // Real time: the CPU cost is paid by actually executing the
            // crypto; observations are only collected by the simulator.
            Action::Cpu(_) | Action::Observe(_) => {}
        }
    }
}
