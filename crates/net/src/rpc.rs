//! The client-facing RPC front end (WIRE_FORMAT.md §11).
//!
//! Each node of a [`crate::TcpCluster`] can serve a client listener: real
//! `TcpStream`s carrying [`RpcMsg`] frames — the same 9-byte frame header
//! and strict validation as the inter-node mesh, but a *request/reply*
//! discipline instead of a full-duplex protocol stream. The
//! [`crate::ThreadedCluster`] serves the identical verbs through an
//! in-process call path ([`crate::ThreadedCluster::rpc_call`]), so the
//! runtime matrix covers ingress on channels and on sockets with one
//! handler implementation.
//!
//! The transport is deliberately policy-free: every decoded message goes to
//! an [`RpcHandler`] (implemented by the runtime layer over the admission
//! gate in `fireledger-core`), and an accepted submission is handed to the
//! node through the same event channel client transactions always used. The
//! one policy the transport does own is *how connections die*: a framing or
//! codec violation is answered with a typed [`RpcMsg::Reject`] before the
//! close, never a silent teardown — a client that sends garbage learns it
//! sent garbage.

use crate::frame::{read_frame_into, write_frame};
use fireledger_types::rpc::{RejectReason, RpcMsg};
use fireledger_types::{NodeId, Transaction, WireCodec};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Live client connections one node's listener serves concurrently. A
/// connection past this bound is refused *at accept* with a typed
/// [`RpcMsg::Reject`] `{ Busy }` before the socket closes — a client flood
/// can no longer spawn unbounded server threads; it gets told to back off.
/// The bound is per node, so cluster-wide RPC threads stay O(n).
pub const MAX_RPC_CONNS_PER_NODE: usize = 64;

/// Serves decoded client RPCs for a node.
///
/// Implementations decide admission (dedup, rate limits, lane shedding,
/// availability) and return the reply to send; a `Some` transaction means
/// the submission was accepted and must be handed to the node. The same
/// handler serves every runtime's transport.
pub trait RpcHandler: Send + Sync {
    /// Handles one client message addressed to `node`.
    fn handle(&self, node: NodeId, msg: &RpcMsg) -> (RpcMsg, Option<Transaction>);
}

/// Maps a frame-read failure to the reject the client is told before the
/// connection closes.
fn classify(e: &io::Error) -> RejectReason {
    if e.kind() == io::ErrorKind::InvalidData {
        // `FrameHeader::decode` distinguishes oversized lengths ("exceeds
        // MAX_FRAME_LEN") from magic/version violations.
        if e.to_string().contains("exceeds") {
            RejectReason::Oversized
        } else {
            RejectReason::BadFrame
        }
    } else {
        RejectReason::BadFrame
    }
}

/// Writes a typed reject frame and closes the connection.
fn reject_and_close(mut stream: TcpStream, reason: RejectReason) {
    let reject = RpcMsg::Reject { reason };
    let _ = write_frame(&mut stream, &reject.encode());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serves one client connection: read a frame, decode, dispatch, reply.
/// Returns on clean close, on the server's stop flag, or after answering a
/// protocol violation with a typed reject.
fn serve_conn(
    mut stream: TcpStream,
    node: NodeId,
    handler: &dyn RpcHandler,
    submit: &dyn Fn(Transaction),
    stop: &AtomicBool,
) {
    // A periodic read timeout lets an idle connection observe the stop
    // flag; frame reads resume transparently (idle means no partial frame).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut payload = Vec::new();
    loop {
        let len = match read_frame_into(&mut stream, &mut payload) {
            Ok(Some(len)) => len,
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) => {
                // Oversized length, bad magic, wrong version, torn frame:
                // tell the client why before hanging up.
                reject_and_close(stream, classify(&e));
                return;
            }
        };
        let msg = match RpcMsg::decode(&payload[..len]) {
            Ok(msg) => msg,
            Err(_) => {
                // A well-framed payload that is not a client verb.
                reject_and_close(stream, RejectReason::BadMessage);
                return;
            }
        };
        let (reply, tx) = handler.handle(node, &msg);
        if let Some(tx) = tx {
            submit(tx);
        }
        if write_frame(&mut stream, &reply.encode())
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

/// The per-node client listeners of a cluster: one `TcpListener` per node,
/// an accept thread each, and a **bounded** pool of connection threads —
/// at most [`MAX_RPC_CONNS_PER_NODE`] live connections per node, the rest
/// refused at accept with a typed `Busy` reject.
pub struct RpcServer {
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl RpcServer {
    /// Binds one loopback listener per submitter and starts the accept
    /// threads. `submitters[i]` receives the transactions node `i`'s
    /// handler accepts.
    pub(crate) fn spawn<S>(handler: Arc<dyn RpcHandler>, submitters: Vec<S>) -> io::Result<Self>
    where
        S: Fn(Transaction) + Clone + Send + 'static,
    {
        Self::spawn_limited(handler, submitters, MAX_RPC_CONNS_PER_NODE)
    }

    /// [`RpcServer::spawn`] with an explicit per-node connection bound
    /// (test hook — production listeners use the documented default).
    pub(crate) fn spawn_limited<S>(
        handler: Arc<dyn RpcHandler>,
        submitters: Vec<S>,
        limit: usize,
    ) -> io::Result<Self>
    where
        S: Fn(Transaction) + Clone + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(submitters.len());
        let mut handles = Vec::with_capacity(submitters.len());
        for (i, submit) in submitters.into_iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let node = NodeId(i as u32);
            let handler = handler.clone();
            let stop = stop.clone();
            let live = Arc::new(AtomicUsize::new(0));
            handles.push(std::thread::spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_nodelay(true);
                    // Reap finished connection threads so the handle list
                    // is bounded by the pool, not by connections served.
                    conns.retain(|c| !c.is_finished());
                    if live.load(Ordering::SeqCst) >= limit {
                        // Pool full: typed refusal at accept, before any
                        // request is read. No thread is spawned.
                        reject_and_close(stream, RejectReason::Busy);
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let handler = handler.clone();
                    let submit = submit.clone();
                    let stop = stop.clone();
                    let live = live.clone();
                    conns.push(std::thread::spawn(move || {
                        serve_conn(stream, node, handler.as_ref(), &submit, &stop);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                for c in conns {
                    let _ = c.join();
                }
            }));
        }
        Ok(RpcServer {
            addrs,
            stop,
            handles,
        })
    }

    /// The listening address of each node's client endpoint.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Accept threads the server runs (one per node). Connection threads
    /// are transient and bounded per node; they are not counted here.
    pub(crate) fn accept_threads(&self) -> usize {
        self.handles.len()
    }

    /// Stops the accept threads and joins every connection thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake each accept loop with a throwaway dial.
        for addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// A framed request/reply client for one node's RPC endpoint — what the
/// load generator's TCP port and the ingress tests speak.
pub struct RpcClient {
    stream: TcpStream,
    payload: Vec<u8>,
}

impl RpcClient {
    /// Connects to a node's client endpoint.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RpcClient {
            stream,
            payload: Vec::new(),
        })
    }

    /// Sends one request and blocks for its reply. A typed server reject
    /// comes back as `Ok(RpcMsg::Reject { .. })`; transport failures are
    /// `Err`.
    pub fn call(&mut self, msg: &RpcMsg) -> io::Result<RpcMsg> {
        write_frame(&mut self.stream, &msg.encode())?;
        self.stream.flush()?;
        match read_frame_into(&mut self.stream, &mut self.payload)? {
            Some(len) => RpcMsg::decode(&self.payload[..len])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Writes raw bytes on the connection — test hook for malformed-frame
    /// behaviour — then reads one reply frame like [`RpcClient::call`].
    pub fn call_raw(&mut self, bytes: &[u8]) -> io::Result<RpcMsg> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        match read_frame_into(&mut self.stream, &mut self.payload)? {
            Some(len) => RpcMsg::decode(&self.payload[..len])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::codec::{FrameHeader, FRAME_MAGIC, MAX_FRAME_LEN, WIRE_VERSION};
    use fireledger_types::rpc::{Lane, SubmitStatus};
    use std::sync::Mutex;

    /// Accepts everything; ticket = seq. Lets the transport be tested
    /// without the admission layer.
    struct AcceptAllRpc;
    impl RpcHandler for AcceptAllRpc {
        fn handle(&self, _node: NodeId, msg: &RpcMsg) -> (RpcMsg, Option<Transaction>) {
            match msg {
                RpcMsg::Submit {
                    client,
                    seq,
                    payload,
                    ..
                } => (
                    RpcMsg::SubmitAck {
                        client: *client,
                        seq: *seq,
                        status: SubmitStatus::Accepted { ticket: *seq },
                    },
                    Some(Transaction::new(*client, *seq, payload.clone())),
                ),
                _ => (
                    RpcMsg::Reject {
                        reason: RejectReason::BadMessage,
                    },
                    None,
                ),
            }
        }
    }

    fn server() -> (RpcServer, Arc<Mutex<Vec<Transaction>>>) {
        let seen: Arc<Mutex<Vec<Transaction>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let submit = move |tx: Transaction| sink.lock().unwrap().push(tx);
        let server = RpcServer::spawn(Arc::new(AcceptAllRpc), vec![submit]).expect("bind");
        (server, seen)
    }

    #[test]
    fn submit_roundtrip_reaches_the_submitter() {
        let (server, seen) = server();
        let mut client = RpcClient::connect(server.addrs()[0]).expect("connect");
        let reply = client
            .call(&RpcMsg::Submit {
                client: 9,
                seq: 1,
                lane: Lane::Normal,
                payload: vec![1, 2, 3],
            })
            .expect("call");
        assert_eq!(
            reply,
            RpcMsg::SubmitAck {
                client: 9,
                seq: 1,
                status: SubmitStatus::Accepted { ticket: 1 }
            }
        );
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[Transaction::new(9, 1, vec![1, 2, 3])]
        );
        server.shutdown();
    }

    #[test]
    fn bad_magic_frame_gets_a_typed_reject_before_close() {
        let (server, _) = server();
        let mut client = RpcClient::connect(server.addrs()[0]).expect("connect");
        let mut junk = FrameHeader::new(1).encode().to_vec();
        junk[0] = b'Z';
        junk.push(0);
        let reply = client.call_raw(&junk).expect("reject frame expected");
        assert_eq!(
            reply,
            RpcMsg::Reject {
                reason: RejectReason::BadFrame
            }
        );
        server.shutdown();
    }

    #[test]
    fn oversized_frame_gets_a_typed_reject_before_close() {
        let (server, _) = server();
        let mut client = RpcClient::connect(server.addrs()[0]).expect("connect");
        let mut junk = Vec::new();
        junk.extend_from_slice(&FRAME_MAGIC);
        junk.push(WIRE_VERSION);
        junk.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let reply = client.call_raw(&junk).expect("reject frame expected");
        assert_eq!(
            reply,
            RpcMsg::Reject {
                reason: RejectReason::Oversized
            }
        );
        server.shutdown();
    }

    #[test]
    fn undecodable_payload_gets_a_typed_reject_before_close() {
        let (server, _) = server();
        let mut client = RpcClient::connect(server.addrs()[0]).expect("connect");
        // A perfectly framed payload with an unknown RPC discriminant.
        let mut junk = FrameHeader::new(1).encode().to_vec();
        junk.push(0xEE);
        let reply = client.call_raw(&junk).expect("reject frame expected");
        assert_eq!(
            reply,
            RpcMsg::Reject {
                reason: RejectReason::BadMessage
            }
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let (server, _) = server();
        let _client = RpcClient::connect(server.addrs()[0]).expect("connect");
        // The connection stays open and idle; shutdown must still join.
        server.shutdown();
    }

    #[test]
    fn full_accept_pool_refuses_with_typed_busy_and_recovers() {
        let seen: Arc<Mutex<Vec<Transaction>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let submit = move |tx: Transaction| sink.lock().unwrap().push(tx);
        let server =
            RpcServer::spawn_limited(Arc::new(AcceptAllRpc), vec![submit], 2).expect("bind");
        let addr = server.addrs()[0];

        let submit_msg = |seq| RpcMsg::Submit {
            client: 5,
            seq,
            lane: Lane::Normal,
            payload: vec![],
        };
        // Fill the pool; a round-trip each proves both were truly accepted.
        let mut c1 = RpcClient::connect(addr).expect("connect");
        let mut c2 = RpcClient::connect(addr).expect("connect");
        c1.call(&submit_msg(1)).expect("pool slot 1");
        c2.call(&submit_msg(2)).expect("pool slot 2");

        // The third connection is refused at accept with a typed Busy —
        // read it straight off the raw stream (nothing was even sent).
        let mut extra = TcpStream::connect(addr).expect("connect");
        let frame = crate::frame::read_frame(&mut extra)
            .expect("read reject")
            .expect("reject frame");
        assert_eq!(
            RpcMsg::decode(&frame).expect("decode reject"),
            RpcMsg::Reject {
                reason: RejectReason::Busy
            }
        );

        // Closing a pooled connection frees its slot: a retrying client
        // gets in once the server reaps the finished thread.
        drop(c1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let reply = loop {
            if let Ok(mut c3) = RpcClient::connect(addr) {
                // A Busy reject here means the freed slot isn't reaped yet;
                // keep retrying until a real ack (or the deadline).
                if let Ok(reply @ RpcMsg::SubmitAck { .. }) = c3.call(&submit_msg(3)) {
                    break reply;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "freed pool slot never became usable"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        assert_eq!(
            reply,
            RpcMsg::SubmitAck {
                client: 5,
                seq: 3,
                status: SubmitStatus::Accepted { ticket: 3 }
            }
        );
        server.shutdown();
    }
}
