//! The TCP runtime: each node owns real sockets in a static localhost mesh.
//!
//! This is the runtime the paper's deployment shape calls for — nodes that
//! exchange *bytes*, not Rust values. Every message crosses a real
//! `std::net::TcpStream`, framed per WIRE_FORMAT.md §3 and encoded with the
//! message's [`WireCodec`] layout, so the whole encode → socket → decode path
//! is exercised (and paid for) on every hop.
//!
//! ## Topology and threads
//!
//! The mesh is *static*: one TCP connection per unordered node pair, dialed
//! at start-up (node `i` dials node `j` for `i < j`) and never re-established
//! — a connection teardown is treated as a benign crash of the remote end,
//! matching the paper's link model. Each node runs one protocol thread (the
//! shared event loop of [`crate::node_loop`]); who performs the socket I/O
//! is the cluster's [`TcpEngine`]:
//!
//! * [`TcpEngine::Reactor`] (the default): a small fixed pool of
//!   `reactor_threads` nonblocking poll threads — see [`crate::reactor`] —
//!   multiplexes **all** streams, so total cluster threads are `n + k`.
//!   This is what lets a single host run the n = 32–64 meshes the paper's
//!   scalability figures need.
//! * [`TcpEngine::ThreadPerPeer`] (the original engine, retained for
//!   before/after benchmarking): per stream, one reader thread decoding
//!   frames into the node's event queue and one writer thread draining an
//!   unbounded channel of pre-encoded frames — O(n²) threads cluster-wide.
//!
//! Either way a slow or dead peer never stalls the protocol thread, and
//! there is **no back-pressure**: frames addressed to a stalled peer buffer
//! in that peer's outbox channel for the remainder of the run, so sender
//! memory grows with how long the peer stays stalled. For the bounded
//! benchmark runs this runtime serves, that is the right trade; a
//! long-lived deployment would want a bounded channel plus a disconnect
//! policy instead.
//!
//! ## Handshake
//!
//! The dialing side opens every connection with a `Hello` frame whose payload
//! is its `NodeId` (WIRE_FORMAT.md §3.1); the accepting side validates it
//! before attaching the connection to the mesh. Frames that fail validation
//! tear the connection down.

use crate::frame::{read_frame, read_frame_into, write_coalesced, write_frame};
use crate::node_loop::{
    run_node, spawn_preverify_stages, ClusterCore, Egress, NodeEvent, PreVerify,
};
use crate::reactor::{Conn, Reactor, TcpEngine};
use crate::shim::{DelayLine, LinkShim};
use crate::RealtimeCluster;
use fireledger_types::codec::{FrameHeader, FRAME_HEADER_LEN};
use fireledger_types::{
    Delivery, FaultPlan, LinkDecision, NodeId, Protocol, Transaction, WireCodec,
};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on frames drained per writer wakeup: bounds the batch vector
/// and keeps a single vectored write under the kernel's iovec limit ballpark
/// (`IOV_MAX` is 1024 on Linux; `write_vectored` handles the excess, this
/// just avoids pathological batch growth while the socket is stalled).
const MAX_BATCH_FRAMES: usize = 1024;

/// Builds the complete frame (header + payload) for one message, shared
/// across all writer threads of a broadcast. [`WireCodec::encoded_len`]
/// sizes the buffer exactly (one right-sized allocation, no growth
/// reallocations, no payload copy), but the header's length field is
/// written from the bytes *actually encoded* — the size hint is purely
/// advisory, so a drifted `encoded_len` impl can never desync the stream.
fn frame_of<M: WireCodec>(msg: &M) -> Arc<Vec<u8>> {
    let hint = msg.encoded_len();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + hint);
    out.resize(FRAME_HEADER_LEN, 0);
    msg.encode_to(&mut out);
    let len = out.len() - FRAME_HEADER_LEN;
    out[..FRAME_HEADER_LEN].copy_from_slice(&FrameHeader::new(len).encode());
    debug_assert_eq!(len, hint, "encoded_len hint drifted from encode_to");
    Arc::new(out)
}

/// Routes a node's outbound messages to its per-peer writer threads,
/// encoding each message exactly once. A send addressed to the node itself
/// loops back through its own event queue — the same semantics the mpsc
/// runtime and the simulator give self-sends, with no socket involved.
struct TcpEgress<M> {
    me: NodeId,
    writers: Vec<Option<Sender<Arc<Vec<u8>>>>>,
    loopback: Sender<NodeEvent<M>>,
}

impl<M: WireCodec> Egress<M> for TcpEgress<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        if to == self.me {
            let _ = self
                .loopback
                .send(NodeEvent::Message { from: self.me, msg });
        } else if let Some(Some(w)) = self.writers.get(to.as_usize()) {
            let _ = w.send(frame_of(&msg));
        }
    }

    fn broadcast(&mut self, msg: M) {
        let frame = frame_of(&msg);
        for w in self.writers.iter().flatten() {
            let _ = w.send(frame.clone());
        }
    }
}

/// [`TcpEgress`] wrapped in the fault-plan link shim. The interceptor sits
/// **between the wire codec and the per-peer writer threads**: messages are
/// encoded and framed exactly once (shared across a broadcast, like the
/// fault-free path), and the *frame* is then dropped, parked on the delay
/// line, or queued twice per the link's decision — so every surviving copy
/// still crosses a real socket. Self-sends loop back unintercepted, the
/// same semantics the simulator gives them.
struct ShimmedTcpEgress<M> {
    me: NodeId,
    n: usize,
    writers: Vec<Option<Sender<Arc<Vec<u8>>>>>,
    loopback: Sender<NodeEvent<M>>,
    shim: LinkShim,
    /// Delay-line targets are the flat writer table (`from * n + to`).
    delay: Sender<(Instant, usize, Arc<Vec<u8>>)>,
}

impl<M: WireCodec> ShimmedTcpEgress<M> {
    fn route(&mut self, to: NodeId, frame: Arc<Vec<u8>>) {
        let Some(Some(w)) = self.writers.get(to.as_usize()) else {
            return;
        };
        let slot = self.me.as_usize() * self.n + to.as_usize();
        match self.shim.decide(self.me, to) {
            LinkDecision::Deliver => {
                let _ = w.send(frame);
            }
            LinkDecision::Drop => {}
            // A parked frame bypasses the writer queue's FIFO order, so
            // delay and reorder coincide on real sockets (see the threaded
            // shim for the same note).
            LinkDecision::Delay(d) | LinkDecision::Reorder(d) => {
                let _ = self.delay.send((Instant::now() + d, slot, frame));
            }
            LinkDecision::Duplicate(d) => {
                let _ = w.send(frame.clone());
                let _ = self.delay.send((Instant::now() + d, slot, frame));
            }
        }
    }
}

impl<M: WireCodec> Egress<M> for ShimmedTcpEgress<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        if to == self.me {
            let _ = self
                .loopback
                .send(NodeEvent::Message { from: self.me, msg });
            return;
        }
        let frame = frame_of(&msg);
        self.route(to, frame);
    }

    fn broadcast(&mut self, msg: M) {
        let frame = frame_of(&msg);
        for i in 0..self.n {
            if i != self.me.as_usize() {
                self.route(NodeId(i as u32), frame.clone());
            }
        }
    }
}

/// A running TCP cluster: real sockets over localhost, one thread per node
/// plus per-peer reader/writer threads.
///
/// The public surface mirrors [`crate::ThreadedCluster`] so the two runtimes
/// are interchangeable to a driver.
pub struct TcpCluster<M> {
    core: ClusterCore<M>,
    node_handles: Vec<JoinHandle<()>>,
    io_handles: Vec<JoinHandle<()>>,
    /// The reactor pool, when the cluster runs on [`TcpEngine::Reactor`]
    /// (and has at least one socket).
    reactor: Option<Reactor>,
    /// Every stream endpoint we hold (two per connection, one per side), kept
    /// to force-unblock reader/writer threads at shutdown.
    streams: Vec<TcpStream>,
    delay: Option<DelayLine<Arc<Vec<u8>>>>,
    /// Per-node client listeners, when [`TcpCluster::serve_rpc`] was called.
    rpc: Option<crate::rpc::RpcServer>,
    /// Listener addresses, index-aligned with node ids (empty until
    /// [`TcpCluster::serve_rpc`]).
    rpc_addrs: Vec<std::net::SocketAddr>,
    /// Lazily-dialed client connections backing [`TcpCluster::rpc_call`],
    /// one slot per node; a transport error drops the slot so the next call
    /// redials.
    rpc_clients: Mutex<Vec<Option<crate::rpc::RpcClient>>>,
}

impl<M> TcpCluster<M>
where
    M: WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    /// Binds one listener per node, dials the full mesh, performs the hello
    /// handshake on every connection, and starts all threads, fault-free.
    pub fn spawn<P>(nodes: Vec<P>) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_with_faults(nodes, None)
    }

    /// Like [`TcpCluster::spawn`], but with an optional [`FaultPlan`]
    /// compiled into a frame-level interceptor between the codec and every
    /// per-peer writer thread. The plan's time offsets are measured from
    /// the moment the mesh is fully dialed (just before the node threads
    /// start).
    pub fn spawn_with_faults<P>(nodes: Vec<P>, faults: Option<FaultPlan>) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_full(nodes, faults, None)
    }

    /// Like [`TcpCluster::spawn_with_faults`], plus an optional
    /// [`PreVerify`] hook: each node gets a pre-verify stage thread between
    /// its ingress (fed by the per-peer reader threads and the loopback)
    /// and its event loop, so frames decoded off the wire are
    /// batch-verified before the consensus loop sees them. Reader threads
    /// keep doing the decoding in parallel; the stage pays the cryptographic
    /// validation.
    pub fn spawn_full<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<Arc<dyn PreVerify<M>>>,
    ) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_durable(nodes, faults, pre_verify, None)
    }

    /// Like [`TcpCluster::spawn_full`], additionally installing a rebuild
    /// hook: after [`TcpCluster::kill`] destroys a node's protocol state,
    /// [`TcpCluster::restart`] invokes the hook to reconstruct the node —
    /// typically from its durable store — and re-enters it into the mesh.
    /// The sockets are never re-dialed: the mesh is static, and what a
    /// "kill -9" destroys is the protocol's process state, which is exactly
    /// what the hook rebuilds.
    pub fn spawn_durable<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<Arc<dyn PreVerify<M>>>,
        rebuild: Option<Arc<dyn Fn(NodeId) -> P + Send + Sync>>,
    ) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_cluster(nodes, faults, pre_verify, rebuild, &[])
    }

    /// The full spawn: like [`TcpCluster::spawn_durable`], with some nodes
    /// additionally spawned **dormant** (late join): a dormant node's
    /// sockets, reader/writer threads and event loop come up with everyone
    /// else's — the mesh is static — but its protocol state machine is
    /// dropped before it ever starts. A later [`TcpCluster::restart`]
    /// rebuilds it through the rebuild hook, which is how a node enters the
    /// cluster mid-run and catches up through state sync.
    pub fn spawn_cluster<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<Arc<dyn PreVerify<M>>>,
        rebuild: Option<Arc<dyn Fn(NodeId) -> P + Send + Sync>>,
        dormant: &[NodeId],
    ) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_engine(
            nodes,
            faults,
            pre_verify,
            rebuild,
            dormant,
            TcpEngine::default(),
        )
    }

    /// [`TcpCluster::spawn_cluster`] with an explicit socket [`TcpEngine`].
    /// Every other spawn entry point uses the default (the reactor with
    /// [`crate::DEFAULT_REACTOR_THREADS`] threads); this one is for drivers
    /// that expose the knob — [`ClusterBuilder::reactor_threads`] — and for
    /// the before/after scaling benchmarks that pin the legacy
    /// thread-per-peer engine.
    ///
    /// [`ClusterBuilder::reactor_threads`]: ../fireledger_runtime/struct.ClusterBuilder.html#method.reactor_threads
    pub fn spawn_engine<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<Arc<dyn PreVerify<M>>>,
        rebuild: Option<Arc<dyn Fn(NodeId) -> P + Send + Sync>>,
        dormant: &[NodeId],
        engine: TcpEngine,
    ) -> io::Result<Self>
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        let n = nodes.len();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }

        // mesh[i][j]: the stream node i uses to exchange frames with node j.
        // Index loops, not iterators: each pass fills both mesh[i][j] and
        // mesh[j][i].
        let mut mesh: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let mut dialed = TcpStream::connect(addrs[j])?;
                dialed.set_nodelay(true)?;
                // Hello handshake (WIRE_FORMAT.md §3.1): the dialer
                // identifies itself; the acceptor validates before attaching.
                write_frame(&mut dialed, &NodeId(i as u32).encode())?;
                let (mut accepted, _) = listeners[j].accept()?;
                accepted.set_nodelay(true)?;
                let hello = read_frame(&mut accepted)?.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed before hello")
                })?;
                let peer = NodeId::decode(&hello)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if peer != NodeId(i as u32) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("hello claims {peer}, expected p{i}"),
                    ));
                }
                mesh[i][j] = Some(dialed);
                mesh[j][i] = Some(accepted);
            }
        }

        let (core, mut evt_receivers) = ClusterCore::new(n);
        for node in dormant {
            core.set_dormant(*node);
        }
        let mut streams = Vec::new();
        let mut io_handles = Vec::new();
        if let Some(pv) = &pre_verify {
            let (staged, stage_handles) = spawn_preverify_stages(evt_receivers, pv);
            evt_receivers = staged;
            io_handles.extend(stage_handles);
        }

        // First pass: attach every live stream to the engine. Either way,
        // the stream's ingress into the engine is a per-connection mpsc
        // outbox whose sender goes into a flat `from * n + to` table, so
        // the egress paths — and the fault delay line, which re-injects a
        // parked frame into the right outbox regardless of which node
        // parked it — are identical across engines.
        let mut writers_flat: Vec<Option<Sender<Arc<Vec<u8>>>>> = vec![None; n * n];
        let mut conns: Vec<Conn<M>> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                let Some(stream) = mesh[i][j].take() else {
                    continue;
                };
                streams.push(stream.try_clone()?);
                let (wtx, wrx) = channel::<Arc<Vec<u8>>>();
                writers_flat[i * n + j] = Some(wtx);

                if let TcpEngine::Reactor { .. } = engine {
                    // Reactor engine: register the nonblocking stream; a
                    // pool thread drives both direction's state machines.
                    stream.set_nonblocking(true)?;
                    conns.push(Conn::new(
                        stream,
                        NodeId(j as u32),
                        NodeId(i as u32),
                        wrx,
                        core.evt_senders[i].clone(),
                    ));
                    continue;
                }

                // Legacy engine, writer thread: drain-and-coalesce. Block
                // for the first frame, then opportunistically drain
                // everything else already queued and hand the whole batch
                // to the kernel as one vectored write — one syscall per
                // wakeup instead of one per message. The batch vector is
                // reused across wakeups.
                let mut write_half = stream.try_clone()?;
                io_handles.push(std::thread::spawn(move || {
                    let mut batch: Vec<Arc<Vec<u8>>> = Vec::new();
                    while let Ok(first) = wrx.recv() {
                        batch.clear();
                        batch.push(first);
                        while batch.len() < MAX_BATCH_FRAMES {
                            match wrx.try_recv() {
                                Ok(frame) => batch.push(frame),
                                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                            }
                        }
                        let views: Vec<&[u8]> = batch.iter().map(|f| f.as_slice()).collect();
                        if write_coalesced(&mut write_half, &views).is_err() {
                            return;
                        }
                    }
                }));

                // Legacy engine, reader thread: decode frames into the
                // node's event queue, reusing one payload buffer for every
                // frame on the stream. Each frame's bytes are wrapped in
                // one Arc-backed `Bytes` and decoded zero-copy: every
                // transaction payload and signature in the message is a
                // view into that single allocation, not a per-field copy.
                // Any framing or codec violation tears the connection down.
                let mut read_half = stream;
                let evt_tx = core.evt_senders[i].clone();
                let from = NodeId(j as u32);
                io_handles.push(std::thread::spawn(move || {
                    let mut payload = Vec::new();
                    loop {
                        let len = match read_frame_into(&mut read_half, &mut payload) {
                            Ok(Some(len)) => len,
                            // Clean close: the peer shut down — a benign
                            // crash under the paper's link model.
                            Ok(None) => return,
                            Err(e) => {
                                // A framing violation on an inter-node link
                                // (bad magic, oversized length, torn frame)
                                // is a peer bug or an attack: name the peer
                                // and the reason before tearing down.
                                if e.kind() == io::ErrorKind::InvalidData {
                                    eprintln!(
                                        "fireledger-net: tearing down link p{j} -> p{i}: {e}"
                                    );
                                }
                                return;
                            }
                        };
                        let backing = fireledger_types::Bytes::copy_from_slice(&payload[..len]);
                        let msg = match M::decode_shared(&backing) {
                            Ok(msg) => msg,
                            Err(e) => {
                                eprintln!(
                                    "fireledger-net: tearing down link p{j} -> p{i}: \
                                     undecodable frame ({len} bytes): {e}"
                                );
                                return;
                            }
                        };
                        if evt_tx.send(NodeEvent::Message { from, msg }).is_err() {
                            return;
                        }
                    }
                }));
            }
        }

        let reactor = if conns.is_empty() {
            None
        } else {
            Some(Reactor::spawn(conns, engine.pool_size(), MAX_BATCH_FRAMES))
        };

        let delay = faults
            .as_ref()
            .map(|_| DelayLine::new(writers_flat.clone()));

        // Second pass: the protocol threads, each with its egress (shimmed
        // when a fault plan is active).
        let start = core.log.start();
        let mut node_handles = Vec::with_capacity(n);
        for (i, (node, evt_rx)) in nodes.into_iter().zip(evt_receivers).enumerate() {
            let me = NodeId(i as u32);
            let writers: Vec<Option<Sender<Arc<Vec<u8>>>>> =
                writers_flat[i * n..(i + 1) * n].to_vec();
            let log = core.log.clone();
            let flags = core.flags();
            let rebuild = rebuild.clone();
            let loopback = core.evt_senders[i].clone();
            match &faults {
                None => {
                    let mut egress = TcpEgress {
                        me,
                        writers,
                        loopback,
                    };
                    node_handles.push(std::thread::spawn(move || {
                        run_node(node, me, evt_rx, &mut egress, log, flags, rebuild);
                    }));
                }
                Some(plan) => {
                    let mut egress = ShimmedTcpEgress {
                        me,
                        n,
                        writers,
                        loopback,
                        shim: LinkShim::new(plan.clone(), start),
                        delay: delay.as_ref().expect("delay line exists").sender(),
                    };
                    node_handles.push(std::thread::spawn(move || {
                        run_node(node, me, evt_rx, &mut egress, log, flags, rebuild);
                    }));
                }
            }
        }

        Ok(TcpCluster {
            core,
            node_handles,
            io_handles,
            reactor,
            streams,
            delay,
            rpc: None,
            rpc_addrs: Vec::new(),
            rpc_clients: Mutex::new(Vec::new()),
        })
    }

    /// Starts one client-facing RPC listener per node (WIRE_FORMAT.md §11)
    /// and returns their addresses, index-aligned with node ids. Accepted
    /// submissions enter the node through the same event channel as
    /// [`TcpCluster::submit`]. Call once, before driving traffic.
    pub fn serve_rpc(
        &mut self,
        handler: Arc<dyn crate::rpc::RpcHandler>,
    ) -> io::Result<Vec<std::net::SocketAddr>> {
        assert!(self.rpc.is_none(), "serve_rpc is once per cluster");
        let submitters: Vec<_> = (0..self.core.len())
            .map(|i| {
                let evt_tx = self.core.evt_senders[i].clone();
                move |tx: Transaction| {
                    let _ = evt_tx.send(NodeEvent::Transaction(tx));
                }
            })
            .collect();
        let server = crate::rpc::RpcServer::spawn(handler, submitters)?;
        let addrs = server.addrs().to_vec();
        self.rpc = Some(server);
        self.rpc_addrs = addrs.clone();
        *self.rpc_clients.lock().expect("rpc client pool") =
            (0..self.core.len()).map(|_| None).collect();
        Ok(addrs)
    }

    /// Serves one client RPC against `node` over a real socket round-trip
    /// through the listener started by [`TcpCluster::serve_rpc`]: the
    /// message is framed, written to the node's client port, and the reply
    /// frame decoded — the full §11 wire path. Returns `None` when no
    /// listener is up or the transport failed (the connection slot is
    /// dropped and redialed on the next call).
    pub fn rpc_call(
        &self,
        node: NodeId,
        msg: &fireledger_types::rpc::RpcMsg,
    ) -> Option<fireledger_types::rpc::RpcMsg> {
        let addr = *self.rpc_addrs.get(node.as_usize())?;
        let mut pool = self.rpc_clients.lock().expect("rpc client pool");
        let slot = pool.get_mut(node.as_usize())?;
        if slot.is_none() {
            *slot = crate::rpc::RpcClient::connect(addr).ok();
        }
        let client = slot.as_mut()?;
        match client.call(msg) {
            Ok(reply) => Some(reply),
            Err(_) => {
                *slot = None;
                None
            }
        }
    }

    /// `node`'s availability as mirrored by its own event loop.
    pub fn node_status(&self, node: NodeId) -> crate::NodeStatus {
        crate::NodeStatus::from_u8(self.core.status(node))
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        self.core.submit(node, tx);
    }

    /// Crashes `node` (same semantics as [`crate::ThreadedCluster::crash`]):
    /// its protocol thread stops without draining its backlog; its sockets
    /// stay open but go silent, which is how a benign crash looks to peers.
    pub fn crash(&self, node: NodeId) {
        self.core.crash(node);
    }

    /// Pauses `node` (the crash half of a crash-recover fault): its
    /// protocol thread discards events and expires timers silently until
    /// [`TcpCluster::resume`]. Its sockets stay open but go silent.
    pub fn pause(&self, node: NodeId) {
        self.core.pause(node);
    }

    /// Resumes a paused `node`.
    pub fn resume(&self, node: NodeId) {
        self.core.resume(node);
    }

    /// Kills `node`: its protocol state machine is dropped outright —
    /// in-memory state destroyed, durable store closed, delivery log
    /// cleared — while its thread and sockets stay up to host a possible
    /// restart. Harsher than [`TcpCluster::pause`], which keeps state.
    pub fn kill(&self, node: NodeId) {
        self.core.kill(node);
    }

    /// Restarts a killed `node` through the rebuild hook installed by
    /// [`TcpCluster::spawn_durable`] (ignored without one): the node is
    /// reconstructed from its durable store and rejoins the mesh on its
    /// original sockets.
    pub fn restart(&self, node: NodeId) {
        self.core.restart(node);
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.core.deliveries(node)
    }

    /// Wall-clock offsets (from cluster start) of `node`'s deliveries.
    pub fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        self.core.delivery_times(node)
    }

    /// The instant the cluster's clock started (the zero point of
    /// [`TcpCluster::delivery_times`]).
    pub fn start(&self) -> std::time::Instant {
        self.core.log.start()
    }

    /// Threads this cluster is running right now: protocol threads, socket
    /// engine threads (reactor pool or per-stream reader/writer pairs),
    /// pre-verify stages, the fault delay line, and the RPC accept threads.
    /// Transient per-client RPC connection threads are excluded — they are
    /// bounded by the listener's accept pool, not by cluster size.
    ///
    /// This is the number behind the O(n) scaling claim: on the reactor
    /// engine a fault-free, ingress-free cluster counts exactly
    /// `n + reactor_threads`, versus `n + 2n(n−1)` on the legacy engine.
    pub fn thread_count(&self) -> usize {
        self.node_handles.len()
            + self.io_handles.len()
            + self.reactor.as_ref().map_or(0, |r| r.thread_count())
            + usize::from(self.delay.is_some())
            + self.rpc.as_ref().map_or(0, |rpc| rpc.accept_threads())
    }

    /// Stops all threads, closes every socket, and returns the final
    /// per-node deliveries.
    pub fn shutdown(mut self) -> Vec<Vec<Delivery>> {
        // Client listeners close first: no new submissions enter a cluster
        // that is tearing down. Dropping the pooled client connections
        // unblocks their server-side threads immediately.
        self.rpc_clients.lock().expect("rpc client pool").clear();
        if let Some(rpc) = self.rpc.take() {
            rpc.shutdown();
        }
        self.core.signal_shutdown();
        // Joining the protocol threads drops their egress channels, which
        // lets idle writer threads finish; the delay line goes next (it
        // holds writer senders too); shutting the sockets down then
        // unblocks any reader or writer parked in a syscall and fails the
        // reactor's pending state machines, so the pool drains and exits.
        for h in self.node_handles {
            let _ = h.join();
        }
        if let Some(delay) = self.delay {
            delay.stop();
        }
        for stream in &self.streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(reactor) = self.reactor.take() {
            reactor.stop_and_join();
        }
        for h in self.io_handles {
            let _ = h.join();
        }
        self.core.take_deliveries()
    }
}

impl<M> RealtimeCluster for TcpCluster<M>
where
    M: WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    fn submit(&self, node: NodeId, tx: Transaction) {
        TcpCluster::submit(self, node, tx);
    }
    fn crash(&self, node: NodeId) {
        TcpCluster::crash(self, node);
    }
    fn pause(&self, node: NodeId) {
        TcpCluster::pause(self, node);
    }
    fn resume(&self, node: NodeId) {
        TcpCluster::resume(self, node);
    }
    fn kill(&self, node: NodeId) {
        TcpCluster::kill(self, node);
    }
    fn restart(&self, node: NodeId) {
        TcpCluster::restart(self, node);
    }
    fn node_status(&self, node: NodeId) -> crate::NodeStatus {
        TcpCluster::node_status(self, node)
    }
    fn thread_count(&self) -> usize {
        TcpCluster::thread_count(self)
    }
    fn rpc(
        &self,
        node: NodeId,
        msg: &fireledger_types::rpc::RpcMsg,
    ) -> Option<fireledger_types::rpc::RpcMsg> {
        TcpCluster::rpc_call(self, node, msg)
    }
    fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        TcpCluster::deliveries(self, node)
    }
    fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        TcpCluster::delivery_times(self, node)
    }
    fn start(&self) -> std::time::Instant {
        TcpCluster::start(self)
    }
    fn shutdown(self) -> Vec<Vec<Delivery>> {
        TcpCluster::shutdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{Outbox, Round, TimerId, WorkerId};
    use std::time::Duration;

    fn delivery(round: u64, proposer: NodeId) -> Delivery {
        Delivery {
            worker: WorkerId(0),
            round: Round(round),
            proposer,
            block: fireledger_types::Block::new(
                fireledger_types::BlockHeader::new(
                    Round(round),
                    WorkerId(0),
                    proposer,
                    fireledger_types::GENESIS_HASH,
                    fireledger_types::GENESIS_HASH,
                    0,
                    0,
                ),
                vec![],
            ),
        }
    }

    /// Node 0 broadcasts on start and on a timer; everyone delivers what it
    /// receives — the same smoke protocol the threaded runtime uses, but now
    /// every `u64` crosses a real socket.
    struct Echo {
        me: NodeId,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            if self.me == NodeId(0) {
                out.broadcast(7);
                out.set_timer(TimerId(1), Duration::from_millis(5));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            out.deliver(delivery(msg, from));
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<u64>) {
            out.broadcast(8);
        }
    }

    #[test]
    fn tcp_cluster_routes_messages_and_timers_over_sockets() {
        let nodes: Vec<Echo> = (0..4).map(|i| Echo { me: NodeId(i) }).collect();
        let cluster = TcpCluster::spawn(nodes).expect("mesh setup");
        assert_eq!(cluster.len(), 4);
        std::thread::sleep(Duration::from_millis(120));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert!(rounds.contains(&7), "node {i} missed broadcast: {rounds:?}");
            assert!(
                rounds.contains(&8),
                "node {i} missed timer bcast: {rounds:?}"
            );
        }
    }

    #[test]
    fn unicast_replies_flow_both_directions() {
        // 0 broadcasts; each receiver unicasts an ack back; 0 delivers acks.
        struct Ack {
            me: NodeId,
        }
        impl Protocol for Ack {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Outbox<u64>) {
                if self.me == NodeId(0) {
                    out.broadcast(1);
                }
            }
            fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
                if msg == 1 {
                    out.send(NodeId(0), 100 + self.me.0 as u64);
                } else {
                    out.deliver(delivery(msg, from));
                }
            }
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
        }
        let nodes: Vec<Ack> = (0..4).map(|i| Ack { me: NodeId(i) }).collect();
        let cluster = TcpCluster::spawn(nodes).expect("mesh setup");
        std::thread::sleep(Duration::from_millis(120));
        let deliveries = cluster.shutdown();
        let acks: std::collections::HashSet<u64> =
            deliveries[0].iter().map(|d| d.round.0).collect();
        assert_eq!(acks, [101u64, 102, 103].into_iter().collect());
    }

    #[test]
    fn crashed_node_goes_silent_but_cluster_shuts_down_cleanly() {
        struct TxDeliver {
            me: NodeId,
        }
        impl Protocol for TxDeliver {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _o: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.deliver(delivery(tx.seq, self.me));
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<TxDeliver> = (0..4).map(|i| TxDeliver { me: NodeId(i) }).collect();
        let cluster = TcpCluster::spawn(nodes).expect("mesh setup");
        cluster.crash(NodeId(3));
        for seq in 0..50 {
            cluster.submit(NodeId(3), Transaction::zeroed(1, seq, 4));
        }
        cluster.submit(NodeId(0), Transaction::zeroed(1, 0, 4));
        std::thread::sleep(Duration::from_millis(100));
        let deliveries = cluster.shutdown();
        assert!(deliveries[3].is_empty(), "crashed node kept delivering");
        assert!(!deliveries[0].is_empty());
    }

    #[test]
    fn frame_interceptor_drops_and_delays_on_real_sockets() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        // Drop everything node 0 sends; everyone else communicates freely —
        // asserted over real sockets, after the codec, before the writers.
        let nodes: Vec<Echo> = (0..3).map(|i| Echo { me: NodeId(i) }).collect();
        let plan = FaultPlan::named("mute-0").drop(
            LinkSelector::From(NodeId(0)),
            FaultWindow::ALWAYS,
            1.0,
        );
        let cluster = TcpCluster::spawn_with_faults(nodes, Some(plan)).expect("mesh setup");
        std::thread::sleep(Duration::from_millis(100));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            assert!(
                delivered.is_empty(),
                "node {i} heard the muted broadcaster: {} messages",
                delivered.len()
            );
        }

        // A pure delay still delivers — late, and through the delay line's
        // writer re-injection path.
        let nodes: Vec<Echo> = (0..3).map(|i| Echo { me: NodeId(i) }).collect();
        let plan = FaultPlan::named("slow").delay(
            LinkSelector::All,
            FaultWindow::ALWAYS,
            Duration::from_millis(25),
            Duration::from_millis(35),
        );
        let cluster = TcpCluster::spawn_with_faults(nodes, Some(plan)).expect("mesh setup");
        std::thread::sleep(Duration::from_millis(150));
        let times = cluster.delivery_times(NodeId(1));
        let deliveries = cluster.shutdown();
        let rounds: Vec<u64> = deliveries[1].iter().map(|d| d.round.0).collect();
        assert!(rounds.contains(&7), "delayed broadcast never arrived");
        assert!(
            times
                .first()
                .is_some_and(|t| *t >= Duration::from_millis(25)),
            "delivery beat the injected delay: {times:?}"
        );
    }

    #[test]
    fn legacy_engine_matches_reactor_and_costs_quadratic_threads() {
        // Same smoke protocol on both engines; the reactor must not change
        // what arrives, only how many threads carry it.
        let mut counts = Vec::new();
        for engine in [TcpEngine::ThreadPerPeer, TcpEngine::default()] {
            let nodes: Vec<Echo> = (0..4).map(|i| Echo { me: NodeId(i) }).collect();
            let cluster =
                TcpCluster::spawn_engine(nodes, None, None, None, &[], engine).expect("mesh setup");
            std::thread::sleep(Duration::from_millis(120));
            counts.push(cluster.thread_count());
            let deliveries = cluster.shutdown();
            for (i, delivered) in deliveries.iter().enumerate().skip(1) {
                let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
                assert!(
                    rounds.contains(&7) && rounds.contains(&8),
                    "{} engine: node {i} missed traffic: {rounds:?}",
                    engine.label()
                );
            }
        }
        // n=4: the legacy engine runs 4 node threads plus a reader and a
        // writer per directed link (2·4·3 = 24); the reactor replaces those
        // 24 with its fixed pool.
        assert_eq!(counts[0], 4 + 24);
        assert_eq!(counts[1], 4 + crate::reactor::DEFAULT_REACTOR_THREADS);
    }

    #[test]
    fn reactor_survives_pause_resume_and_kill() {
        struct Chatter {
            me: NodeId,
        }
        impl Protocol for Chatter {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _o: &mut Outbox<u64>) {}
            fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
                out.deliver(delivery(msg, from));
            }
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<Chatter> = (0..4).map(|i| Chatter { me: NodeId(i) }).collect();
        let cluster = TcpCluster::spawn(nodes).expect("mesh setup");
        // Pause node 1: the reactor keeps reading its sockets, but the node
        // loop discards events while paused (dead-node semantics).
        cluster.pause(NodeId(1));
        cluster.submit(NodeId(0), Transaction::zeroed(1, 10, 4));
        std::thread::sleep(Duration::from_millis(60));
        // Kill node 3 outright mid-run — its protocol state and delivery
        // log die; its sockets stay up under the reactor.
        cluster.kill(NodeId(3));
        cluster.resume(NodeId(1));
        std::thread::sleep(Duration::from_millis(30));
        cluster.submit(NodeId(0), Transaction::zeroed(1, 11, 4));
        std::thread::sleep(Duration::from_millis(100));
        let deliveries = cluster.shutdown();
        let at = |node: usize| -> Vec<u64> { deliveries[node].iter().map(|d| d.round.0).collect() };
        assert!(
            !at(1).contains(&10) && at(1).contains(&11),
            "pause/resume semantics broke on the reactor: {:?}",
            at(1)
        );
        assert!(at(3).is_empty(), "killed node kept deliveries: {:?}", at(3));
        assert!(
            at(2).contains(&10) && at(2).contains(&11),
            "live bystander missed traffic: {:?}",
            at(2)
        );
    }

    #[test]
    fn single_node_cluster_needs_no_sockets() {
        let cluster = TcpCluster::spawn(vec![Echo { me: NodeId(0) }]).expect("spawn");
        assert_eq!(cluster.len(), 1);
        assert!(!cluster.is_empty());
        let deliveries = cluster.shutdown();
        assert!(deliveries[0].is_empty());
    }
}
