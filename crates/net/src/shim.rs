//! The real-time fault-injection shim shared by the threaded and TCP
//! runtimes.
//!
//! A [`LinkShim`] is the real-time counterpart of the simulator's
//! `PlanAdversary`: it wraps a runtime's egress path and consults the shared
//! [`LinkFaultEngine`] for every outbound message, so the *same*
//! [`FaultPlan`](fireledger_types::FaultPlan) value produces the same
//! drop/delay/reorder/duplicate semantics on real channels and sockets as it
//! does on modelled links.
//!
//! Where it sits (see `docs/ARCHITECTURE.md`, "Fault injection"):
//!
//! * **threads runtime** — between the protocol's `Outbox` drain and the
//!   peers' `mpsc` event queues (messages are intercepted as Rust values);
//! * **TCP runtime** — between the wire codec and the per-peer writer
//!   threads (messages are intercepted as fully framed byte buffers, so a
//!   delayed or duplicated frame exercises the real socket path end to end).
//!
//! Delayed and reordered messages are parked on a [`DelayLine`] — one extra
//! thread per faulty cluster that owns a deadline heap and re-injects each
//! parked item into its destination queue when its deadline passes. Because
//! the delay line bypasses the per-peer FIFO queue, a parked message is
//! naturally overtaken by later traffic, which is exactly the reordering
//! semantics the simulator implements by exempting such messages from its
//! per-link FIFO clamp.

use fireledger_types::{FaultPlan, LinkDecision, LinkFaultEngine, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-sender fault interceptor: the fault engine plus the cluster's start
/// instant (the time base the plan's windows are measured against).
///
/// Each node's egress owns its own `LinkShim`. The underlying per-link RNG
/// streams are keyed by `(from, to)` and every shim only ever asks about
/// links leaving its own node, so per-node engines are disjoint views of the
/// same deterministic plan — no cross-thread locking is needed.
pub(crate) struct LinkShim {
    engine: LinkFaultEngine,
    start: Instant,
}

impl LinkShim {
    /// Builds the shim for one sending node.
    pub fn new(plan: FaultPlan, start: Instant) -> Self {
        LinkShim {
            engine: LinkFaultEngine::new(plan),
            start,
        }
    }

    /// Decides the fate of one message leaving `from` towards `to` now.
    pub fn decide(&mut self, from: NodeId, to: NodeId) -> LinkDecision {
        self.engine.decide(from, to, self.start.elapsed())
    }
}

/// One parked item: delivered to `targets[to]` once `at` passes. Ordered by
/// deadline (then arrival sequence) so the heap pops due items first.
struct Parked<T> {
    at: Instant,
    seq: u64,
    to: usize,
    item: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deadline thread that re-injects delayed/duplicated items: a shared
/// heap of `(deadline, destination, item)` triples, drained in deadline
/// order. Items whose destination sender is gone (a torn-down peer) are
/// silently discarded — the same benign-crash link semantics the live path
/// has.
pub(crate) struct DelayLine<T> {
    tx: Sender<(Instant, usize, T)>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> DelayLine<T> {
    /// Spawns the deadline thread over a fixed target table. `None` entries
    /// are holes (e.g. a node's slot for itself in a writer table).
    pub fn new(targets: Vec<Option<Sender<T>>>) -> Self {
        let (tx, rx) = channel::<(Instant, usize, T)>();
        let handle = std::thread::spawn(move || run_delay_line(rx, targets));
        DelayLine {
            tx,
            handle: Some(handle),
        }
    }

    /// A handle egresses use to park items (cheaply cloneable).
    pub fn sender(&self) -> Sender<(Instant, usize, T)> {
        self.tx.clone()
    }

    /// Stops the thread. Items still parked are discarded — the run is
    /// over. Call after the node threads (and with them every egress clone
    /// of the sender) have been joined.
    pub fn stop(mut self) {
        drop(self.tx);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run_delay_line<T: Send>(rx: Receiver<(Instant, usize, T)>, targets: Vec<Option<Sender<T>>>) {
    let mut heap: BinaryHeap<Reverse<Parked<T>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Release everything that is due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(p)| p.at <= now) {
            let Reverse(p) = heap.pop().expect("peeked");
            if let Some(Some(target)) = targets.get(p.to) {
                let _ = target.send(p.item);
            }
        }
        // Sleep until the next deadline or the next parked item.
        let timeout = heap
            .peek()
            .map(|Reverse(p)| p.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok((at, to, item)) => {
                seq += 1;
                heap.push(Reverse(Parked { at, seq, to, item }));
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Every sender is gone: the cluster is shutting down; pending
            // items die with the run.
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_line_releases_in_deadline_order_not_submit_order() {
        let (tx, rx) = channel::<u32>();
        let line = DelayLine::new(vec![Some(tx)]);
        let sender = line.sender();
        let now = Instant::now();
        sender
            .send((now + Duration::from_millis(40), 0, 1))
            .unwrap();
        sender.send((now + Duration::from_millis(5), 0, 2)).unwrap();
        sender
            .send((now + Duration::from_millis(20), 0, 3))
            .unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        assert_eq!(got, vec![2, 3, 1]);
        drop(sender);
        line.stop();
    }

    #[test]
    fn delay_line_discards_items_for_missing_targets() {
        let (tx, rx) = channel::<u32>();
        let line = DelayLine::new(vec![None, Some(tx)]);
        let sender = line.sender();
        let now = Instant::now();
        sender.send((now, 0, 7)).unwrap(); // hole: discarded
        sender.send((now, 5, 8)).unwrap(); // out of range: discarded
        sender.send((now + Duration::from_millis(5), 1, 9)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 9);
        assert!(rx.try_recv().is_err());
        drop(sender);
        line.stop();
    }

    #[test]
    fn link_shim_applies_the_plan_relative_to_its_start() {
        use fireledger_types::{FaultWindow, LinkSelector};
        // A drop-everything fault active from the very start.
        let plan = fireledger_types::FaultPlan::named("all-drop").drop(
            LinkSelector::All,
            FaultWindow::ALWAYS,
            1.0,
        );
        let mut shim = LinkShim::new(plan, Instant::now());
        assert_eq!(shim.decide(NodeId(0), NodeId(1)), LinkDecision::Drop);
        // A fault windowed far in the future decides Deliver now.
        let later = fireledger_types::FaultPlan::named("later").drop(
            LinkSelector::All,
            FaultWindow::starting_at(Duration::from_secs(3600)),
            1.0,
        );
        let mut shim = LinkShim::new(later, Instant::now());
        assert_eq!(shim.decide(NodeId(0), NodeId(1)), LinkDecision::Deliver);
    }
}
