//! # fireledger-net
//!
//! The real-time runtimes for the sans-IO [`fireledger_types::Protocol`]
//! state machines, plus the framing layer they share:
//!
//! * [`ThreadedCluster`] — one OS thread per node, std `mpsc` channels for
//!   links (reliable, FIFO — the paper's link model), wall-clock timers.
//!   Messages are moved in-process, never serialized.
//! * [`TcpCluster`] — one thread per node *plus* a socket engine
//!   ([`TcpEngine`]): by default a small pool of nonblocking reactor
//!   threads multiplexing the whole mesh (O(n) threads total, which is
//!   what makes n = 32–64 clusters practical on one host), with the
//!   original per-peer reader/writer-thread engine retained for
//!   before/after benchmarking. The mesh is a static full mesh of real
//!   `std::net::TcpStream`s over localhost, and every message is encoded
//!   through the workspace's binary wire format (`docs/WIRE_FORMAT.md`)
//!   with length-prefixed framing ([`frame`]).
//!
//! Both runtimes exist to demonstrate that the protocol implementations are
//! genuinely sans-IO — the exact same `FloNode` / `Worker` / baseline code
//! runs under the deterministic simulator, in-process channels, and real
//! sockets, without a line of protocol code changing. The [`RealtimeCluster`]
//! trait is the common driving surface the `fireledger-runtime` facade uses
//! to treat the two interchangeably.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod frame;
mod node_loop;
mod reactor;
pub mod rpc;
mod shim;
mod tcp;
mod threads;

pub use node_loop::{PreVerify, Verdict};
pub use reactor::{TcpEngine, DEFAULT_REACTOR_THREADS};
pub use rpc::{RpcClient, RpcHandler, RpcServer};
pub use tcp::TcpCluster;
pub use threads::ThreadedCluster;

use fireledger_types::{Delivery, NodeId, Transaction};
use std::time::Duration;

/// Coarse node availability, mirrored out of each node's event loop every
/// iteration. The ingress layer reads it to answer `Syncing`/`Busy` instead
/// of accepting work a catching-up or dead node could lose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Running and accepting work.
    Up,
    /// Catching up through state sync.
    Syncing,
    /// Crashed, paused, or killed.
    Down,
}

impl NodeStatus {
    /// Decodes the loop's atomic encoding (0 up, 1 syncing, everything
    /// else down — unknown values fail safe).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => NodeStatus::Up,
            1 => NodeStatus::Syncing,
            _ => NodeStatus::Down,
        }
    }
}

/// The common driving surface of the real-time runtimes: submit client
/// traffic, schedule crashes and recoveries, observe deliveries, stop the
/// cluster.
///
/// A driver written against this trait (like the `Threads` and `Tcp`
/// runtimes in `fireledger-runtime`) works unchanged on in-process channels
/// and on real sockets.
pub trait RealtimeCluster {
    /// Submits a client transaction to `node`.
    fn submit(&self, node: NodeId, tx: Transaction);
    /// Crashes `node` permanently: its protocol thread stops without
    /// draining its backlog, and it goes silent towards its peers.
    fn crash(&self, node: NodeId);
    /// Pauses `node` — the crash half of a crash-recover fault: the node
    /// discards events and expires timers silently but keeps its protocol
    /// state for [`RealtimeCluster::resume`].
    fn pause(&self, node: NodeId);
    /// Resumes a paused `node`.
    fn resume(&self, node: NodeId);
    /// Kills `node`: the protocol state machine is destroyed outright (its
    /// durable store, if any, is closed by the drop) and the node's
    /// delivery log is cleared, while the hosting thread and transport
    /// stay up. Without a later [`RealtimeCluster::restart`] the node is
    /// permanently silent, like [`RealtimeCluster::crash`]. The default
    /// implementation falls back to `crash` for runtimes without kill
    /// support.
    fn kill(&self, node: NodeId) {
        self.crash(node);
    }
    /// Restarts a killed `node` by rebuilding its protocol state from its
    /// durable store — a no-op on clusters spawned without a rebuild hook.
    /// The default implementation does nothing.
    fn restart(&self, node: NodeId) {
        let _ = node;
    }
    /// `node`'s current availability as mirrored by its own event loop.
    /// The default — for runtimes without a mirror — reads `Up`.
    fn node_status(&self, node: NodeId) -> NodeStatus {
        let _ = node;
        NodeStatus::Up
    }
    /// Serves one client RPC against `node`'s ingress (WIRE_FORMAT.md §11):
    /// a channel call on the threaded runtime, a real socket round-trip on
    /// the TCP runtime. `None` when the cluster has no ingress attached or
    /// the transport failed — a client treats that like a lost connection
    /// and retries. The default — for runtimes without client ingress —
    /// always answers `None`.
    fn rpc(
        &self,
        node: NodeId,
        msg: &fireledger_types::rpc::RpcMsg,
    ) -> Option<fireledger_types::rpc::RpcMsg> {
        let _ = (node, msg);
        None
    }
    /// Blocks delivered so far at `node` (a snapshot).
    fn deliveries(&self, node: NodeId) -> Vec<Delivery>;
    /// Wall-clock offsets (from cluster start) of `node`'s deliveries so
    /// far, parallel to [`RealtimeCluster::deliveries`] — the raw series
    /// behind the delivery-timeline (stall/recovery) metrics in run
    /// reports.
    fn delivery_times(&self, node: NodeId) -> Vec<Duration>;
    /// The instant the cluster's clock started — the zero point of
    /// [`RealtimeCluster::delivery_times`] and of real-time fault-plan
    /// offsets. Drivers measuring latencies against delivery timestamps
    /// must stamp their own events against this same origin.
    fn start(&self) -> std::time::Instant;
    /// OS threads the cluster is running right now — protocol threads plus
    /// every runtime-owned helper (socket engine, pre-verify stages, fault
    /// delay line, RPC accept loops). This is the measurement behind the
    /// reactor's O(n) scaling claim; runtimes that don't account for their
    /// threads report 0 ("not measured"), which is also the value a
    /// simulator-produced report carries.
    fn thread_count(&self) -> usize {
        0
    }
    /// Stops the cluster and returns the final per-node deliveries.
    fn shutdown(self) -> Vec<Vec<Delivery>>;
}
