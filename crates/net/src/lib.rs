//! # fireledger-net
//!
//! A threaded, real-time in-process runtime for the same
//! [`Protocol`](fireledger_types::Protocol) state machines the discrete-event
//! simulator drives. Each node runs on its own OS thread; messages travel
//! over crossbeam channels (reliable, FIFO — the paper's link model) and
//! timers use real wall-clock deadlines.
//!
//! The runtime exists to demonstrate that the protocol implementations are
//! genuinely sans-IO — the exact same `FloNode` / `Worker` / baseline code
//! can run here, paying real CPU for hashing and signing, without any of the
//! simulator's modelling (the examples and experiments use the simulator
//! because it is deterministic and can model the paper's machine classes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use fireledger_types::{Action, Delivery, NodeId, Outbox, Protocol, TimerId, Transaction};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Events routed to a node's thread.
enum NodeEvent<M> {
    Message { from: NodeId, msg: M },
    Transaction(Transaction),
    Shutdown,
}

/// A running threaded cluster.
pub struct ThreadedCluster<M> {
    senders: Vec<Sender<NodeEvent<M>>>,
    handles: Vec<JoinHandle<()>>,
    deliveries: Arc<Mutex<Vec<Vec<Delivery>>>>,
}

impl<M> ThreadedCluster<M>
where
    M: Clone + Send + std::fmt::Debug + 'static,
{
    /// Spawns one thread per node and starts the protocol.
    pub fn spawn<P>(nodes: Vec<P>) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<NodeEvent<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let deliveries = Arc::new(Mutex::new(vec![Vec::new(); n]));
        let mut handles = Vec::with_capacity(n);
        for (i, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let peers = senders.clone();
            let deliveries = deliveries.clone();
            handles.push(std::thread::spawn(move || {
                run_node(&mut node, NodeId(i as u32), rx, peers, deliveries);
            }));
        }
        ThreadedCluster {
            senders,
            handles,
            deliveries,
        }
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        let _ = self.senders[node.as_usize()].send(NodeEvent::Transaction(tx));
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.deliveries.lock()[node.as_usize()].clone()
    }

    /// Stops all node threads and returns the final per-node deliveries.
    pub fn shutdown(self) -> Vec<Vec<Delivery>> {
        for s in &self.senders {
            let _ = s.send(NodeEvent::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        Arc::try_unwrap(self.deliveries)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone())
    }
}

fn run_node<P>(
    node: &mut P,
    me: NodeId,
    rx: Receiver<NodeEvent<P::Msg>>,
    peers: Vec<Sender<NodeEvent<P::Msg>>>,
    deliveries: Arc<Mutex<Vec<Vec<Delivery>>>>,
) where
    P: Protocol,
    P::Msg: Clone + Send + 'static,
{
    let mut timers: HashMap<TimerId, Instant> = HashMap::new();
    let mut out = Outbox::new();
    node.on_start(&mut out);
    apply(me, &mut out, &peers, &mut timers, &deliveries);

    loop {
        // Fire any due timers.
        let now = Instant::now();
        let due: Vec<TimerId> = timers
            .iter()
            .filter(|(_, deadline)| **deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            timers.remove(&id);
            let mut out = Outbox::new();
            node.on_timer(id, &mut out);
            apply(me, &mut out, &peers, &mut timers, &deliveries);
        }
        // Wait for the next event or the next timer deadline.
        let next_deadline = timers.values().min().copied();
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(NodeEvent::Message { from, msg }) => {
                let mut out = Outbox::new();
                node.on_message(from, msg, &mut out);
                apply(me, &mut out, &peers, &mut timers, &deliveries);
            }
            Ok(NodeEvent::Transaction(tx)) => {
                let mut out = Outbox::new();
                node.on_transaction(tx, &mut out);
                apply(me, &mut out, &peers, &mut timers, &deliveries);
            }
            Ok(NodeEvent::Shutdown) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn apply<M: Clone>(
    me: NodeId,
    out: &mut Outbox<M>,
    peers: &[Sender<NodeEvent<M>>],
    timers: &mut HashMap<TimerId, Instant>,
    deliveries: &Arc<Mutex<Vec<Vec<Delivery>>>>,
) {
    for action in out.drain() {
        match action {
            Action::Send { to, msg } => {
                if let Some(peer) = peers.get(to.as_usize()) {
                    let _ = peer.send(NodeEvent::Message { from: me, msg });
                }
            }
            Action::Broadcast { msg } => {
                for (i, peer) in peers.iter().enumerate() {
                    if i != me.as_usize() {
                        let _ = peer.send(NodeEvent::Message {
                            from: me,
                            msg: msg.clone(),
                        });
                    }
                }
            }
            Action::SetTimer { id, delay } => {
                timers.insert(id, Instant::now() + delay);
            }
            Action::CancelTimer { id } => {
                timers.remove(&id);
            }
            Action::Deliver(d) => {
                deliveries.lock()[me.as_usize()].push(d);
            }
            // Real time: the CPU cost is paid by actually executing the
            // crypto; observations are only collected by the simulator.
            Action::Cpu(_) | Action::Observe(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Round;

    /// A trivial protocol: node 0 broadcasts a counter on start; everyone
    /// delivers what it receives. Exercises the runtime plumbing without
    /// depending on the core crate (which would be a dependency cycle).
    struct Echo {
        me: NodeId,
        n: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            if self.me == NodeId(0) {
                out.broadcast(7);
                out.set_timer(TimerId(1), Duration::from_millis(5));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            out.deliver(Delivery {
                worker: fireledger_types::WorkerId(0),
                round: Round(msg),
                proposer: from,
                block: fireledger_types::Block::new(
                    fireledger_types::BlockHeader::new(
                        Round(msg),
                        fireledger_types::WorkerId(0),
                        from,
                        fireledger_types::GENESIS_HASH,
                        fireledger_types::GENESIS_HASH,
                        0,
                        0,
                    ),
                    vec![],
                ),
            });
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<u64>) {
            out.broadcast(8);
            let _ = self.n;
        }
    }

    #[test]
    fn threaded_cluster_routes_messages_and_timers() {
        let nodes: Vec<Echo> = (0..4).map(|i| Echo { me: NodeId(i), n: 4 }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        for i in 1..4 {
            let rounds: Vec<u64> = deliveries[i].iter().map(|d| d.round.0).collect();
            assert!(rounds.contains(&7), "node {i} missed the broadcast: {rounds:?}");
            assert!(rounds.contains(&8), "node {i} missed the timer broadcast: {rounds:?}");
        }
    }

    #[test]
    fn transactions_reach_the_target_node() {
        struct TxEcho {
            me: NodeId,
        }
        impl Protocol for TxEcho {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<TxEcho> = (0..2).map(|i| TxEcho { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.submit(NodeId(0), Transaction::zeroed(1, 42, 4));
        std::thread::sleep(Duration::from_millis(50));
        // No panic and clean shutdown is the contract here.
        let _ = cluster.shutdown();
    }
}
