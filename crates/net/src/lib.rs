//! # fireledger-net
//!
//! A threaded, real-time in-process runtime for the same
//! [`fireledger_types::Protocol`] state machines the discrete-event
//! simulator drives. Each node runs on its own OS thread; messages travel
//! over std `mpsc` channels (reliable, FIFO — the paper's link model) and
//! timers use real wall-clock deadlines.
//!
//! The runtime exists to demonstrate that the protocol implementations are
//! genuinely sans-IO — the exact same `FloNode` / `Worker` / baseline code
//! can run here, paying real CPU for hashing and signing, without any of the
//! simulator's modelling (the examples and experiments use the simulator
//! because it is deterministic and can model the paper's machine classes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fireledger_types::{Action, Delivery, NodeId, Outbox, Protocol, TimerId, Transaction};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Events routed to a node's thread.
enum NodeEvent<M> {
    Message { from: NodeId, msg: M },
    Transaction(Transaction),
    Shutdown,
}

/// A running threaded cluster.
pub struct ThreadedCluster<M> {
    senders: Vec<Sender<NodeEvent<M>>>,
    handles: Vec<JoinHandle<()>>,
    deliveries: Arc<Mutex<Vec<Vec<Delivery>>>>,
    crashed: Arc<Vec<AtomicBool>>,
}

impl<M> ThreadedCluster<M>
where
    M: Clone + Send + std::fmt::Debug + 'static,
{
    /// Spawns one thread per node and starts the protocol.
    pub fn spawn<P>(nodes: Vec<P>) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<NodeEvent<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let deliveries = Arc::new(Mutex::new(vec![Vec::new(); n]));
        let crashed: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let mut handles = Vec::with_capacity(n);
        for (i, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let peers = senders.clone();
            let deliveries = deliveries.clone();
            let crashed = crashed.clone();
            handles.push(std::thread::spawn(move || {
                run_node(&mut node, NodeId(i as u32), rx, peers, deliveries, crashed);
            }));
        }
        ThreadedCluster {
            senders,
            handles,
            deliveries,
            crashed,
        }
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        let _ = self.senders[node.as_usize()].send(NodeEvent::Transaction(tx));
    }

    /// Crashes `node`: a flag the node's thread checks before every event
    /// makes it stop promptly — it does not drain its message backlog first —
    /// and its peers' subsequent sends to it disappear (a benign crash fault,
    /// the shape of the paper's §7.4.1 experiment). The thread notices the
    /// flag within its timer poll interval (≤ ~10 ms). Idempotent.
    pub fn crash(&self, node: NodeId) {
        self.crashed[node.as_usize()].store(true, Ordering::SeqCst);
        // Also wake the thread in case it is parked in recv_timeout.
        let _ = self.senders[node.as_usize()].send(NodeEvent::Shutdown);
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.deliveries.lock().expect("deliveries lock")[node.as_usize()].clone()
    }

    /// Stops all node threads and returns the final per-node deliveries.
    pub fn shutdown(self) -> Vec<Vec<Delivery>> {
        for s in &self.senders {
            let _ = s.send(NodeEvent::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        Arc::try_unwrap(self.deliveries)
            .map(|m| m.into_inner().expect("deliveries lock"))
            .unwrap_or_else(|arc| arc.lock().expect("deliveries lock").clone())
    }
}

fn run_node<P>(
    node: &mut P,
    me: NodeId,
    rx: Receiver<NodeEvent<P::Msg>>,
    peers: Vec<Sender<NodeEvent<P::Msg>>>,
    deliveries: Arc<Mutex<Vec<Vec<Delivery>>>>,
    crashed: Arc<Vec<AtomicBool>>,
) where
    P: Protocol,
    P::Msg: Clone + Send + 'static,
{
    let mut timers: HashMap<TimerId, Instant> = HashMap::new();
    let mut out = Outbox::new();
    node.on_start(&mut out);
    apply(me, &mut out, &peers, &mut timers, &deliveries);

    loop {
        // A crash flag beats everything in the queue: a crashed node must not
        // drain its backlog before going silent.
        if crashed[me.as_usize()].load(Ordering::SeqCst) {
            return;
        }
        // Fire any due timers.
        let now = Instant::now();
        let due: Vec<TimerId> = timers
            .iter()
            .filter(|(_, deadline)| **deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            timers.remove(&id);
            let mut out = Outbox::new();
            node.on_timer(id, &mut out);
            apply(me, &mut out, &peers, &mut timers, &deliveries);
        }
        // Wait for the next event or the next timer deadline.
        let next_deadline = timers.values().min().copied();
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(event) => {
                // Re-check after every dequeue: a crash that lands while the
                // thread is parked must beat the event it woke up for.
                if crashed[me.as_usize()].load(Ordering::SeqCst) {
                    return;
                }
                match event {
                    NodeEvent::Message { from, msg } => {
                        let mut out = Outbox::new();
                        node.on_message(from, msg, &mut out);
                        apply(me, &mut out, &peers, &mut timers, &deliveries);
                    }
                    NodeEvent::Transaction(tx) => {
                        let mut out = Outbox::new();
                        node.on_transaction(tx, &mut out);
                        apply(me, &mut out, &peers, &mut timers, &deliveries);
                    }
                    NodeEvent::Shutdown => return,
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn apply<M: Clone>(
    me: NodeId,
    out: &mut Outbox<M>,
    peers: &[Sender<NodeEvent<M>>],
    timers: &mut HashMap<TimerId, Instant>,
    deliveries: &Arc<Mutex<Vec<Vec<Delivery>>>>,
) {
    for action in out.drain() {
        match action {
            Action::Send { to, msg } => {
                if let Some(peer) = peers.get(to.as_usize()) {
                    let _ = peer.send(NodeEvent::Message { from: me, msg });
                }
            }
            Action::Broadcast { msg } => {
                for (i, peer) in peers.iter().enumerate() {
                    if i != me.as_usize() {
                        let _ = peer.send(NodeEvent::Message {
                            from: me,
                            msg: msg.clone(),
                        });
                    }
                }
            }
            Action::SetTimer { id, delay } => {
                timers.insert(id, Instant::now() + delay);
            }
            Action::CancelTimer { id } => {
                timers.remove(&id);
            }
            Action::Deliver(d) => {
                deliveries.lock().expect("deliveries lock")[me.as_usize()].push(d);
            }
            // Real time: the CPU cost is paid by actually executing the
            // crypto; observations are only collected by the simulator.
            Action::Cpu(_) | Action::Observe(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Round;

    /// A trivial protocol: node 0 broadcasts a counter on start; everyone
    /// delivers what it receives. Exercises the runtime plumbing without
    /// depending on the core crate (which would be a dependency cycle).
    struct Echo {
        me: NodeId,
        n: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            if self.me == NodeId(0) {
                out.broadcast(7);
                out.set_timer(TimerId(1), Duration::from_millis(5));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            out.deliver(Delivery {
                worker: fireledger_types::WorkerId(0),
                round: Round(msg),
                proposer: from,
                block: fireledger_types::Block::new(
                    fireledger_types::BlockHeader::new(
                        Round(msg),
                        fireledger_types::WorkerId(0),
                        from,
                        fireledger_types::GENESIS_HASH,
                        fireledger_types::GENESIS_HASH,
                        0,
                        0,
                    ),
                    vec![],
                ),
            });
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<u64>) {
            out.broadcast(8);
            let _ = self.n;
        }
    }

    #[test]
    fn threaded_cluster_routes_messages_and_timers() {
        let nodes: Vec<Echo> = (0..4)
            .map(|i| Echo {
                me: NodeId(i),
                n: 4,
            })
            .collect();
        let cluster = ThreadedCluster::spawn(nodes);
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert!(
                rounds.contains(&7),
                "node {i} missed the broadcast: {rounds:?}"
            );
            assert!(
                rounds.contains(&8),
                "node {i} missed the timer broadcast: {rounds:?}"
            );
        }
    }

    #[test]
    fn transactions_reach_the_target_node() {
        struct TxEcho {
            me: NodeId,
        }
        impl Protocol for TxEcho {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<TxEcho> = (0..2).map(|i| TxEcho { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.submit(NodeId(0), Transaction::zeroed(1, 42, 4));
        std::thread::sleep(Duration::from_millis(50));
        // No panic and clean shutdown is the contract here.
        let _ = cluster.shutdown();
    }

    #[test]
    fn crashed_node_stops_despite_a_queued_backlog() {
        // A crashed node must not drain events that arrive after the crash
        // flag is set, even though its inbox holds work.
        struct TxDeliver {
            me: NodeId,
        }
        impl Protocol for TxDeliver {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.deliver(Delivery {
                    worker: fireledger_types::WorkerId(0),
                    round: Round(tx.seq),
                    proposer: self.me,
                    block: fireledger_types::Block::new(
                        fireledger_types::BlockHeader::new(
                            Round(tx.seq),
                            fireledger_types::WorkerId(0),
                            self.me,
                            fireledger_types::GENESIS_HASH,
                            fireledger_types::GENESIS_HASH,
                            0,
                            0,
                        ),
                        vec![],
                    ),
                });
            }
        }
        let nodes: Vec<TxDeliver> = (0..2).map(|i| TxDeliver { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.crash(NodeId(1));
        // A backlog submitted after the crash: none of it may be processed.
        for seq in 0..100 {
            cluster.submit(NodeId(1), Transaction::zeroed(1, seq, 4));
        }
        // The survivor keeps working.
        cluster.submit(NodeId(0), Transaction::zeroed(1, 0, 4));
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        assert!(
            deliveries[1].is_empty(),
            "crashed node processed {} queued events after its crash",
            deliveries[1].len()
        );
        assert!(!deliveries[0].is_empty());
    }
}
