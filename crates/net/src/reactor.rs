//! The event-driven socket engine: a small fixed pool of reactor threads
//! multiplexing every peer connection in the mesh.
//!
//! The original TCP engine dedicates one reader and one writer thread to
//! every stream — O(n²) threads cluster-wide — which caps realistic cluster
//! sizes in the single digits. This module replaces those per-stream threads
//! with `k` **reactor threads** (default [`DEFAULT_REACTOR_THREADS`]), each
//! owning a static partition of the mesh's connections and driving them with
//! nonblocking I/O:
//!
//! * every stream is `set_nonblocking(true)` and wrapped in a [`Conn`];
//! * a reactor thread sweeps its connections in a loop, advancing each
//!   connection's **read state machine** ([`FrameReader`]: resumable
//!   partial-frame accumulation into the same grow-only payload buffer the
//!   per-stream readers used) and **write state machine** ([`WriteCursor`]:
//!   the drain-and-coalesce batching of `write_coalesced`, made resumable
//!   across `WouldBlock`);
//! * when a sweep makes no progress the thread backs off — first yielding,
//!   then sleeping — so an idle cluster costs ~0 CPU while a loaded one
//!   never sleeps.
//!
//! Everything *around* the engine is unchanged: frames still enter through
//! the per-connection mpsc outbox that [`crate::tcp`]'s egress (and the
//! fault shim's delay line) feed, and decoded messages still leave through
//! the node's event queue — the reactor only replaces who performs the
//! socket syscalls. Total cluster threads drop from `n + 2n(n−1)` to
//! `n + k`.
//!
//! This is std-only by design (no epoll/kqueue binding): readiness is
//! discovered by attempting the nonblocking syscall and treating
//! `WouldBlock` as "not ready". For the mesh sizes this runtime targets
//! (n ≤ 64, a few thousand sockets) a sweep is cheap, and the adaptive
//! backoff keeps the idle cost negligible.

use crate::node_loop::NodeEvent;
use fireledger_types::codec::{FrameHeader, FRAME_HEADER_LEN};
use fireledger_types::{NodeId, WireCodec};
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default size of the reactor pool.
///
/// Four threads saturate a localhost mesh well past n = 64 while staying
/// below the core count of small CI hosts; [`ClusterBuilder::reactor_threads`]
/// overrides it per cluster.
///
/// [`ClusterBuilder::reactor_threads`]: ../../fireledger_runtime/struct.ClusterBuilder.html#method.reactor_threads
pub const DEFAULT_REACTOR_THREADS: usize = 4;

/// Frames decoded per connection per sweep before the reactor moves on —
/// bounds how long one hot peer can starve the rest of the partition.
const READ_BUDGET_FRAMES: usize = 64;

/// Outbox refills per connection per sweep (each up to `MAX_BATCH_FRAMES`
/// frames) — the write-side fairness bound.
const WRITE_BUDGET_BATCHES: usize = 2;

/// Idle sweeps before the reactor starts sleeping instead of yielding.
const SPIN_SWEEPS: u32 = 16;

/// How long an idle reactor thread sleeps between sweeps once past
/// [`SPIN_SWEEPS`]. Bounds added latency when traffic resumes.
const IDLE_SLEEP: Duration = Duration::from_micros(100);

/// Which socket engine a TCP cluster runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpEngine {
    /// The original engine: one blocking reader thread and one blocking
    /// writer thread per stream — O(n²) threads cluster-wide. Retained so
    /// before/after comparisons (and the n-sweep bench rows) run on one
    /// binary; new code should prefer [`TcpEngine::Reactor`].
    ThreadPerPeer,
    /// The event-driven engine: `threads` nonblocking reactor threads own
    /// all streams. `threads == 0` selects [`DEFAULT_REACTOR_THREADS`].
    Reactor {
        /// Size of the reactor pool (0 = default).
        threads: usize,
    },
}

impl Default for TcpEngine {
    fn default() -> Self {
        TcpEngine::Reactor { threads: 0 }
    }
}

impl TcpEngine {
    /// The pool size this engine resolves to (0 for the thread-per-peer
    /// engine, whose I/O thread count is a function of `n` instead).
    pub fn pool_size(self) -> usize {
        match self {
            TcpEngine::ThreadPerPeer => 0,
            TcpEngine::Reactor { threads: 0 } => DEFAULT_REACTOR_THREADS,
            TcpEngine::Reactor { threads } => threads,
        }
    }

    /// Short label for reports and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            TcpEngine::ThreadPerPeer => "thread-per-peer",
            TcpEngine::Reactor { .. } => "reactor",
        }
    }
}

/// What one [`FrameReader::step`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReadStep {
    /// A complete frame: the payload is in `reader.payload()[..len]`.
    Frame(usize),
    /// The socket has no more bytes right now; resume on the next sweep.
    WouldBlock,
    /// Clean end of stream, exactly at a frame boundary.
    Closed,
}

/// Resumable frame reader: the state machine form of
/// [`read_frame_into`](crate::frame::read_frame_into).
///
/// Unlike the blocking reader it can be suspended at *any* byte — mid-header
/// or mid-payload — when the socket returns `WouldBlock`, and picked up on a
/// later sweep exactly where it left off. The payload buffer is grow-only,
/// so steady state reads allocate nothing, and validation (magic, version,
/// [`MAX_FRAME_LEN`](fireledger_types::codec::MAX_FRAME_LEN)) is identical
/// to the blocking path.
pub(crate) struct FrameReader {
    header: [u8; FRAME_HEADER_LEN],
    /// Bytes of the current header already read (meaningful while
    /// `target.is_none()`).
    filled: usize,
    payload: Vec<u8>,
    /// `Some(len)` while reading a payload of `len` bytes; `filled` then
    /// counts payload bytes.
    target: Option<usize>,
}

impl FrameReader {
    pub(crate) fn new() -> Self {
        FrameReader {
            header: [0u8; FRAME_HEADER_LEN],
            filled: 0,
            payload: Vec::new(),
            target: None,
        }
    }

    /// The payload buffer; after `Ok(ReadStep::Frame(len))` the frame's
    /// bytes are `&payload()[..len]`.
    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Advances the state machine as far as the socket allows: at most one
    /// complete frame, or up to the point the socket would block.
    pub(crate) fn step(&mut self, r: &mut impl Read) -> io::Result<ReadStep> {
        loop {
            match self.target {
                None => {
                    // Header phase.
                    match r.read(&mut self.header[self.filled..]) {
                        Ok(0) if self.filled == 0 => return Ok(ReadStep::Closed),
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "stream closed inside a frame header",
                            ))
                        }
                        Ok(k) => self.filled += k,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return Ok(ReadStep::WouldBlock)
                        }
                        Err(e) => return Err(e),
                    }
                    if self.filled == FRAME_HEADER_LEN {
                        let header = FrameHeader::decode(&self.header)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                        let len = header.len as usize;
                        if self.payload.len() < len {
                            self.payload.resize(len, 0);
                        }
                        self.filled = 0;
                        self.target = Some(len);
                    }
                }
                Some(len) => {
                    // Payload phase.
                    if self.filled == len {
                        self.filled = 0;
                        self.target = None;
                        return Ok(ReadStep::Frame(len));
                    }
                    match r.read(&mut self.payload[self.filled..len]) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "stream closed inside a frame payload",
                            ))
                        }
                        Ok(k) => self.filled += k,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return Ok(ReadStep::WouldBlock)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

/// Resumable batch writer: the state machine form of
/// [`write_coalesced`](crate::frame::write_coalesced).
///
/// Holds a drained batch of pre-encoded frames plus a `(index, offset)`
/// cursor; each [`WriteCursor::step`] re-issues the unwritten remainder as
/// one vectored write and advances the cursor past whatever the kernel
/// accepted, so a `WouldBlock` mid-batch suspends the write and a later
/// sweep resumes at the exact byte.
pub(crate) struct WriteCursor {
    batch: Vec<Arc<Vec<u8>>>,
    /// First frame not fully written.
    idx: usize,
    /// Bytes of `batch[idx]` already written.
    off: usize,
}

impl WriteCursor {
    pub(crate) fn new() -> Self {
        WriteCursor {
            batch: Vec::new(),
            idx: 0,
            off: 0,
        }
    }

    /// True when every queued frame has been handed to the kernel.
    pub(crate) fn is_drained(&self) -> bool {
        self.idx >= self.batch.len()
    }

    /// Replaces the (fully drained) batch with up to `cap` frames from the
    /// outbox. Returns how many frames were taken and whether the outbox was
    /// observed *disconnected* (every sender dropped and the queue drained —
    /// `try_recv` only reports it once both hold). The caller must take the
    /// verdict from here rather than probing the channel again: a second
    /// `try_recv` could race a late producer (the delay line re-injecting a
    /// held frame) and steal a frame the next refill was owed.
    pub(crate) fn refill(&mut self, outbox: &Receiver<Arc<Vec<u8>>>, cap: usize) -> (usize, bool) {
        debug_assert!(self.is_drained(), "refill with frames still in flight");
        self.batch.clear();
        self.idx = 0;
        self.off = 0;
        let mut disconnected = false;
        while self.batch.len() < cap {
            match outbox.try_recv() {
                Ok(frame) => self.batch.push(frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        (self.batch.len(), disconnected)
    }

    /// Queues frames directly (tests and single-producer paths).
    #[cfg(test)]
    pub(crate) fn push(&mut self, frame: Arc<Vec<u8>>) {
        self.batch.push(frame);
    }

    /// Issues vectored writes until the batch drains or the socket blocks.
    /// Returns the bytes accepted by this call; check
    /// [`WriteCursor::is_drained`] to distinguish "done" from "blocked".
    pub(crate) fn step(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut wrote = 0;
        loop {
            // Skip exhausted (or empty) frames.
            while self.idx < self.batch.len() && self.batch[self.idx].len() == self.off {
                self.idx += 1;
                self.off = 0;
            }
            if self.is_drained() {
                return Ok(wrote);
            }
            let mut slices = Vec::with_capacity(self.batch.len() - self.idx);
            slices.push(IoSlice::new(&self.batch[self.idx][self.off..]));
            slices.extend(self.batch[self.idx + 1..].iter().map(|f| IoSlice::new(f)));
            let written = match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes of a frame batch",
                    ))
                }
                Ok(k) => k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(wrote),
                Err(e) => return Err(e),
            };
            wrote += written;
            // Advance (idx, off) past the bytes the kernel accepted.
            let mut remaining = written;
            while remaining > 0 {
                let avail = self.batch[self.idx].len() - self.off;
                let step = remaining.min(avail);
                self.off += step;
                remaining -= step;
                if self.off == self.batch[self.idx].len() {
                    self.idx += 1;
                    self.off = 0;
                }
            }
        }
    }
}

/// One mesh connection as the reactor sees it: the nonblocking stream plus
/// both direction's state machines, the outbox the egress feeds, and the
/// event queue decoded messages drain into.
///
/// The read and write halves fail independently, exactly like the dedicated
/// reader/writer threads they replace: a framing violation kills only the
/// read half; a write error kills only the write half.
pub(crate) struct Conn<M> {
    pub(crate) stream: TcpStream,
    /// The peer on the far end (the `from` of every decoded message).
    pub(crate) peer: NodeId,
    /// The local node this connection belongs to (for log messages).
    pub(crate) local: NodeId,
    pub(crate) outbox: Receiver<Arc<Vec<u8>>>,
    pub(crate) evt_tx: Sender<NodeEvent<M>>,
    pub(crate) reader: FrameReader,
    pub(crate) writer: WriteCursor,
    read_dead: bool,
    write_dead: bool,
    /// Set when every outbox sender is gone (cluster tearing down): once the
    /// in-flight batch drains there will never be more to write.
    outbox_gone: bool,
    /// Set when the node's event queue is gone: keep *consuming* frames so
    /// peers aren't back-pressured into a stall, but stop decoding them.
    evt_gone: bool,
}

impl<M: WireCodec> Conn<M> {
    pub(crate) fn new(
        stream: TcpStream,
        peer: NodeId,
        local: NodeId,
        outbox: Receiver<Arc<Vec<u8>>>,
        evt_tx: Sender<NodeEvent<M>>,
    ) -> Self {
        Conn {
            stream,
            peer,
            local,
            outbox,
            evt_tx,
            reader: FrameReader::new(),
            writer: WriteCursor::new(),
            read_dead: false,
            write_dead: false,
            outbox_gone: false,
            evt_gone: false,
        }
    }

    /// Both halves finished: nothing left to read, nothing left to write.
    fn done(&self) -> bool {
        let write_done = self.write_dead || (self.outbox_gone && self.writer.is_drained());
        self.read_dead && write_done
    }

    /// Advances the write half; returns true when any progress was made.
    fn poll_write(&mut self, max_batch: usize) -> bool {
        if self.write_dead {
            return false;
        }
        let mut progress = false;
        for _ in 0..WRITE_BUDGET_BATCHES {
            if self.writer.is_drained() {
                let (taken, disconnected) = self.writer.refill(&self.outbox, max_batch);
                if disconnected {
                    self.outbox_gone = true;
                }
                if taken == 0 {
                    break;
                }
                progress = true;
            }
            match self.writer.step(&mut self.stream) {
                Ok(wrote) => {
                    progress |= wrote > 0;
                    if !self.writer.is_drained() {
                        break; // WouldBlock mid-batch: resume next sweep.
                    }
                }
                Err(_) => {
                    // Dead peer: the write half is done for good. The read
                    // half keeps going — same independence the dedicated
                    // writer threads had.
                    self.write_dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Advances the read half; returns true when any progress was made.
    fn poll_read(&mut self) -> bool {
        if self.read_dead {
            return false;
        }
        let mut progress = false;
        for _ in 0..READ_BUDGET_FRAMES {
            match self.reader.step(&mut self.stream) {
                Ok(ReadStep::Frame(len)) => {
                    progress = true;
                    if self.evt_gone {
                        continue; // drain-and-discard: keep the peer unblocked
                    }
                    let backing =
                        fireledger_types::Bytes::copy_from_slice(&self.reader.payload()[..len]);
                    match M::decode_shared(&backing) {
                        Ok(msg) => {
                            let from = self.peer;
                            if self.evt_tx.send(NodeEvent::Message { from, msg }).is_err() {
                                self.evt_gone = true;
                            }
                        }
                        Err(e) => {
                            eprintln!(
                                "fireledger-net: tearing down link p{} -> p{}: \
                                 undecodable frame ({len} bytes): {e}",
                                self.peer.as_usize(),
                                self.local.as_usize(),
                            );
                            self.read_dead = true;
                            return true;
                        }
                    }
                }
                Ok(ReadStep::WouldBlock) => break,
                Ok(ReadStep::Closed) => {
                    // Clean close: the peer shut down — a benign crash under
                    // the paper's link model.
                    self.read_dead = true;
                    break;
                }
                Err(e) => {
                    if e.kind() == io::ErrorKind::InvalidData {
                        eprintln!(
                            "fireledger-net: tearing down link p{} -> p{}: {e}",
                            self.peer.as_usize(),
                            self.local.as_usize(),
                        );
                    }
                    self.read_dead = true;
                    break;
                }
            }
        }
        progress
    }
}

/// The reactor pool: `k` threads, each sweeping a static partition of the
/// mesh's connections.
pub(crate) struct Reactor {
    handles: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Reactor {
    /// Partitions `conns` round-robin over `threads` reactor threads and
    /// starts them. Connections must already be nonblocking.
    pub(crate) fn spawn<M>(conns: Vec<Conn<M>>, threads: usize, max_batch: usize) -> Self
    where
        M: WireCodec + Send + Sync + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let k = threads.max(1).min(conns.len().max(1));
        let mut buckets: Vec<Vec<Conn<M>>> = (0..k).map(|_| Vec::new()).collect();
        for (idx, conn) in conns.into_iter().enumerate() {
            buckets[idx % k].push(conn);
        }
        let handles = buckets
            .into_iter()
            .filter(|bucket| !bucket.is_empty())
            .map(|mut bucket| {
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut idle_sweeps: u32 = 0;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let mut progress = false;
                        let mut all_done = true;
                        for conn in bucket.iter_mut() {
                            progress |= conn.poll_write(max_batch);
                            progress |= conn.poll_read();
                            all_done &= conn.done();
                        }
                        if all_done {
                            return;
                        }
                        if progress {
                            idle_sweeps = 0;
                        } else {
                            // Adaptive backoff: spin briefly (cheap wakeups
                            // while traffic is merely bursty), then sleep.
                            idle_sweeps = idle_sweeps.saturating_add(1);
                            if idle_sweeps <= SPIN_SWEEPS {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(IDLE_SLEEP);
                            }
                        }
                    }
                })
            })
            .collect();
        Reactor { handles, stop }
    }

    /// Threads in the pool.
    pub(crate) fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Stops the pool and joins every thread. Call after the sockets have
    /// been shut down, so in-flight syscalls resolve immediately.
    pub(crate) fn stop_and_join(self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A `Read` that serves scripted chunks, returning `WouldBlock` between
    /// them — a socket whose readiness toggles under us.
    struct ChunkedReader {
        chunks: VecDeque<Vec<u8>>,
        /// What to do when the script runs out: block or report EOF.
        eof_at_end: bool,
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.front_mut() {
                None => {
                    if self.eof_at_end {
                        Ok(0)
                    } else {
                        Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"))
                    }
                }
                Some(chunk) => {
                    if chunk.is_empty() {
                        // An empty scripted chunk models one WouldBlock.
                        self.chunks.pop_front();
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
                    }
                    let k = chunk.len().min(buf.len());
                    buf[..k].copy_from_slice(&chunk[..k]);
                    chunk.drain(..k);
                    if chunk.is_empty() {
                        self.chunks.pop_front();
                    }
                    Ok(k)
                }
            }
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = FrameHeader::new(payload.len()).encode().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn partial_frame_resumes_across_wakeups() {
        // One frame dribbled in five chunks with blocks between them,
        // splitting both the header and the payload.
        let wire = framed(b"hello reactor");
        let mut r = ChunkedReader {
            chunks: [&wire[..3], &[][..], &wire[3..10], &[][..], &wire[10..]]
                .into_iter()
                .map(|c| c.to_vec())
                .collect(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::WouldBlock);
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::WouldBlock);
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Frame(13));
        assert_eq!(&reader.payload()[..13], b"hello reactor");
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Closed);
    }

    #[test]
    fn back_to_back_frames_in_one_chunk() {
        let mut wire = framed(b"first");
        wire.extend_from_slice(&framed(b"second, longer"));
        wire.extend_from_slice(&framed(b""));
        let mut r = ChunkedReader {
            chunks: [wire].into(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Frame(5));
        assert_eq!(&reader.payload()[..5], b"first");
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Frame(14));
        assert_eq!(&reader.payload()[..14], b"second, longer");
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Frame(0));
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Closed);
    }

    #[test]
    fn hangup_mid_header_and_mid_payload_are_errors() {
        // EOF three bytes into a header.
        let wire = framed(b"payload");
        let mut r = ChunkedReader {
            chunks: [wire[..3].to_vec()].into(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        let err = reader.step(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // EOF mid-payload (header complete).
        let mut r = ChunkedReader {
            chunks: [wire[..FRAME_HEADER_LEN + 2].to_vec()].into(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        let err = reader.step(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // EOF exactly at a frame boundary is a clean close.
        let mut r = ChunkedReader {
            chunks: [framed(b"whole")].into(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Frame(5));
        assert_eq!(reader.step(&mut r).unwrap(), ReadStep::Closed);
    }

    #[test]
    fn bad_magic_is_invalid_data() {
        let mut wire = framed(b"x");
        wire[0] = b'?';
        let mut r = ChunkedReader {
            chunks: [wire].into(),
            eof_at_end: true,
        };
        let mut reader = FrameReader::new();
        let err = reader.step(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A `Write` that accepts a bounded number of bytes, then `WouldBlock`s
    /// until the allowance is topped up — a socket with a tiny send buffer.
    struct ThrottledWriter {
        accepted: Vec<u8>,
        allowance: usize,
    }

    impl Write for ThrottledWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.allowance == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let k = buf.len().min(self.allowance);
            self.accepted.extend_from_slice(&buf[..k]);
            self.allowance -= k;
            Ok(k)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_resumes_mid_batch_after_wouldblock() {
        let frames: Vec<Arc<Vec<u8>>> = [&b"alpha"[..], b"beta", b"", b"gamma-gamma"]
            .iter()
            .map(|p| Arc::new(framed(p)))
            .collect();
        let expected: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();

        let mut w = ThrottledWriter {
            accepted: Vec::new(),
            allowance: 7, // splits the first frame's header
        };
        let mut cursor = WriteCursor::new();
        for f in &frames {
            cursor.push(f.clone());
        }
        assert_eq!(cursor.step(&mut w).unwrap(), 7);
        assert!(!cursor.is_drained());

        // Top the socket up a few bytes at a time until the batch drains —
        // every step resumes at the exact byte the kernel stopped at.
        let mut total = 7;
        while !cursor.is_drained() {
            w.allowance = 9;
            total += cursor.step(&mut w).unwrap();
        }
        assert_eq!(total, expected.len());
        assert_eq!(w.accepted, expected);
    }

    #[test]
    fn dead_peer_fails_the_write() {
        struct DeadWriter;
        impl Write for DeadWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut cursor = WriteCursor::new();
        cursor.push(Arc::new(framed(b"doomed")));
        let err = cursor.step(&mut DeadWriter).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn refill_takes_at_most_cap_frames() {
        let (tx, rx) = std::sync::mpsc::channel::<Arc<Vec<u8>>>();
        for i in 0..10u8 {
            tx.send(Arc::new(framed(&[i]))).unwrap();
        }
        let mut cursor = WriteCursor::new();
        assert_eq!(cursor.refill(&rx, 4), (4, false));
        let mut sink = Vec::new();
        cursor.step(&mut sink).unwrap();
        assert!(cursor.is_drained());
        assert_eq!(cursor.refill(&rx, 100), (6, false));
    }

    #[test]
    fn refill_reports_disconnect_without_eating_late_frames() {
        // An empty-but-connected outbox is "idle", not "gone" — and a frame
        // that lands right after an empty refill (the delay line re-injecting
        // a held frame) must be picked up by the next refill, not swallowed
        // by a separate disconnect probe.
        let (tx, rx) = std::sync::mpsc::channel::<Arc<Vec<u8>>>();
        let mut cursor = WriteCursor::new();
        assert_eq!(cursor.refill(&rx, 8), (0, false));
        tx.send(Arc::new(framed(b"late"))).unwrap();
        assert_eq!(cursor.refill(&rx, 8), (1, false));
        let mut sink = Vec::new();
        cursor.step(&mut sink).unwrap();
        assert!(cursor.is_drained());
        // Only once every sender is gone *and* the queue is drained does
        // refill report the outbox disconnected.
        drop(tx);
        assert_eq!(cursor.refill(&rx, 8), (0, true));
    }

    #[test]
    fn engine_labels_and_pool_sizes() {
        assert_eq!(TcpEngine::default().pool_size(), DEFAULT_REACTOR_THREADS);
        assert_eq!(TcpEngine::Reactor { threads: 2 }.pool_size(), 2);
        assert_eq!(TcpEngine::ThreadPerPeer.pool_size(), 0);
        assert_eq!(TcpEngine::default().label(), "reactor");
        assert_eq!(TcpEngine::ThreadPerPeer.label(), "thread-per-peer");
    }
}
