//! The mpsc-backed threaded runtime: one OS thread per node, in-process
//! channels for links.
//!
//! This is the lightest real-time runtime: messages are moved, never
//! serialized, so it isolates the cost of real threads and wall-clock timers
//! from the cost of a wire format. The TCP runtime ([`crate::TcpCluster`])
//! shares the same per-node event loop but pushes every message through the
//! binary codec and a real socket.

use crate::node_loop::{run_node, ClusterCore, Egress, NodeEvent};
use crate::RealtimeCluster;
use fireledger_types::{Delivery, NodeId, Protocol, Transaction};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Routes a node's outbound messages to its peers' in-process channels.
struct MpscEgress<M> {
    me: NodeId,
    peers: Vec<Sender<NodeEvent<M>>>,
}

impl<M: Clone> Egress<M> for MpscEgress<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        if let Some(peer) = self.peers.get(to.as_usize()) {
            let _ = peer.send(NodeEvent::Message { from: self.me, msg });
        }
    }

    fn broadcast(&mut self, msg: M) {
        // Share one value across every peer's queue: enqueueing is n − 1
        // reference bumps, and receivers materialize on dequeue (the last
        // one for free) — the mpsc analogue of the TCP runtime's
        // encode-once-broadcast.
        let shared = Arc::new(msg);
        for (i, peer) in self.peers.iter().enumerate() {
            if i != self.me.as_usize() {
                let _ = peer.send(NodeEvent::SharedMessage {
                    from: self.me,
                    msg: shared.clone(),
                });
            }
        }
    }
}

/// A running threaded cluster.
pub struct ThreadedCluster<M> {
    core: ClusterCore<M>,
    handles: Vec<JoinHandle<()>>,
}

impl<M> ThreadedCluster<M>
where
    M: Clone + Send + Sync + std::fmt::Debug + 'static,
{
    /// Spawns one thread per node and starts the protocol.
    pub fn spawn<P>(nodes: Vec<P>) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        let (core, receivers) = ClusterCore::new(nodes.len());
        let mut handles = Vec::with_capacity(nodes.len());
        for (i, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let me = NodeId(i as u32);
            let mut egress = MpscEgress {
                me,
                peers: core.evt_senders.clone(),
            };
            let deliveries = core.deliveries.clone();
            let crashed = core.crashed.clone();
            handles.push(std::thread::spawn(move || {
                run_node(&mut node, me, rx, &mut egress, deliveries, crashed);
            }));
        }
        ThreadedCluster { core, handles }
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        self.core.submit(node, tx);
    }

    /// Crashes `node`: a flag the node's thread checks before every event
    /// makes it stop promptly — it does not drain its message backlog first —
    /// and its peers' subsequent sends to it disappear (a benign crash fault,
    /// the shape of the paper's §7.4.1 experiment). The thread notices the
    /// flag within its timer poll interval (≤ ~10 ms). Idempotent.
    pub fn crash(&self, node: NodeId) {
        self.core.crash(node);
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.core.deliveries(node)
    }

    /// Stops all node threads and returns the final per-node deliveries.
    pub fn shutdown(self) -> Vec<Vec<Delivery>> {
        self.core.signal_shutdown();
        for h in self.handles {
            let _ = h.join();
        }
        self.core.take_deliveries()
    }
}

impl<M> RealtimeCluster for ThreadedCluster<M>
where
    M: Clone + Send + Sync + std::fmt::Debug + 'static,
{
    fn submit(&self, node: NodeId, tx: Transaction) {
        ThreadedCluster::submit(self, node, tx);
    }
    fn crash(&self, node: NodeId) {
        ThreadedCluster::crash(self, node);
    }
    fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        ThreadedCluster::deliveries(self, node)
    }
    fn shutdown(self) -> Vec<Vec<Delivery>> {
        ThreadedCluster::shutdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{Outbox, Round, TimerId};
    use std::time::Duration;

    /// A trivial protocol: node 0 broadcasts a counter on start; everyone
    /// delivers what it receives. Exercises the runtime plumbing without
    /// depending on the core crate (which would be a dependency cycle).
    struct Echo {
        me: NodeId,
        n: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            if self.me == NodeId(0) {
                out.broadcast(7);
                out.set_timer(TimerId(1), Duration::from_millis(5));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            out.deliver(Delivery {
                worker: fireledger_types::WorkerId(0),
                round: Round(msg),
                proposer: from,
                block: fireledger_types::Block::new(
                    fireledger_types::BlockHeader::new(
                        Round(msg),
                        fireledger_types::WorkerId(0),
                        from,
                        fireledger_types::GENESIS_HASH,
                        fireledger_types::GENESIS_HASH,
                        0,
                        0,
                    ),
                    vec![],
                ),
            });
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<u64>) {
            out.broadcast(8);
            let _ = self.n;
        }
    }

    #[test]
    fn threaded_cluster_routes_messages_and_timers() {
        let nodes: Vec<Echo> = (0..4)
            .map(|i| Echo {
                me: NodeId(i),
                n: 4,
            })
            .collect();
        let cluster = ThreadedCluster::spawn(nodes);
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert!(
                rounds.contains(&7),
                "node {i} missed the broadcast: {rounds:?}"
            );
            assert!(
                rounds.contains(&8),
                "node {i} missed the timer broadcast: {rounds:?}"
            );
        }
    }

    #[test]
    fn transactions_reach_the_target_node() {
        struct TxEcho {
            me: NodeId,
        }
        impl Protocol for TxEcho {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<TxEcho> = (0..2).map(|i| TxEcho { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.submit(NodeId(0), Transaction::zeroed(1, 42, 4));
        std::thread::sleep(Duration::from_millis(50));
        // No panic and clean shutdown is the contract here.
        let _ = cluster.shutdown();
    }

    #[test]
    fn crashed_node_stops_despite_a_queued_backlog() {
        // A crashed node must not drain events that arrive after the crash
        // flag is set, even though its inbox holds work.
        struct TxDeliver {
            me: NodeId,
        }
        impl Protocol for TxDeliver {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.deliver(Delivery {
                    worker: fireledger_types::WorkerId(0),
                    round: Round(tx.seq),
                    proposer: self.me,
                    block: fireledger_types::Block::new(
                        fireledger_types::BlockHeader::new(
                            Round(tx.seq),
                            fireledger_types::WorkerId(0),
                            self.me,
                            fireledger_types::GENESIS_HASH,
                            fireledger_types::GENESIS_HASH,
                            0,
                            0,
                        ),
                        vec![],
                    ),
                });
            }
        }
        let nodes: Vec<TxDeliver> = (0..2).map(|i| TxDeliver { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.crash(NodeId(1));
        // A backlog submitted after the crash: none of it may be processed.
        for seq in 0..100 {
            cluster.submit(NodeId(1), Transaction::zeroed(1, seq, 4));
        }
        // The survivor keeps working.
        cluster.submit(NodeId(0), Transaction::zeroed(1, 0, 4));
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        assert!(
            deliveries[1].is_empty(),
            "crashed node processed {} queued events after its crash",
            deliveries[1].len()
        );
        assert!(!deliveries[0].is_empty());
    }
}
