//! The mpsc-backed threaded runtime: one OS thread per node, in-process
//! channels for links.
//!
//! This is the lightest real-time runtime: messages are moved, never
//! serialized, so it isolates the cost of real threads and wall-clock timers
//! from the cost of a wire format. The TCP runtime ([`crate::TcpCluster`])
//! shares the same per-node event loop but pushes every message through the
//! binary codec and a real socket.

use crate::node_loop::{
    run_node, spawn_preverify_stages, ClusterCore, Egress, NodeEvent, PreVerify,
};
use crate::shim::{DelayLine, LinkShim};
use crate::RealtimeCluster;
use fireledger_types::{Delivery, FaultPlan, LinkDecision, NodeId, Protocol, Transaction};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Routes a node's outbound messages to its peers' in-process channels.
struct MpscEgress<M> {
    me: NodeId,
    peers: Vec<Sender<NodeEvent<M>>>,
}

impl<M: Clone> Egress<M> for MpscEgress<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        if let Some(peer) = self.peers.get(to.as_usize()) {
            let _ = peer.send(NodeEvent::Message { from: self.me, msg });
        }
    }

    fn broadcast(&mut self, msg: M) {
        // Share one value across every peer's queue: enqueueing is n − 1
        // reference bumps, and receivers materialize on dequeue (the last
        // one for free) — the mpsc analogue of the TCP runtime's
        // encode-once-broadcast.
        let shared = Arc::new(msg);
        for (i, peer) in self.peers.iter().enumerate() {
            if i != self.me.as_usize() {
                let _ = peer.send(NodeEvent::SharedMessage {
                    from: self.me,
                    msg: shared.clone(),
                });
            }
        }
    }
}

/// [`MpscEgress`] wrapped in the fault-plan link shim: every outbound
/// message is routed through a per-link decision — delivered, dropped,
/// parked on the delay line (delay/reorder), or sent twice (duplicate).
/// Broadcasts decide per link, so one peer can lose a message another peer
/// receives — which is why this egress does not use the shared-`Arc`
/// broadcast fast path.
struct ShimmedMpscEgress<M> {
    me: NodeId,
    peers: Vec<Sender<NodeEvent<M>>>,
    shim: LinkShim,
    delay: Sender<(Instant, usize, NodeEvent<M>)>,
}

impl<M: Clone> ShimmedMpscEgress<M> {
    fn route(&mut self, to: NodeId, msg: M) {
        let Some(peer) = self.peers.get(to.as_usize()) else {
            return;
        };
        // Self-sends never touch the network and are exempt from the plan —
        // the same semantics the simulator (which short-circuits them before
        // the adversary) and the TCP shim give them.
        if to == self.me {
            let _ = peer.send(NodeEvent::Message { from: self.me, msg });
            return;
        }
        match self.shim.decide(self.me, to) {
            LinkDecision::Deliver => {
                let _ = peer.send(NodeEvent::Message { from: self.me, msg });
            }
            LinkDecision::Drop => {}
            // The delay line bypasses the peer's FIFO queue, so a plain
            // delay can also be overtaken here — real-time delay and
            // reorder coincide (the simulator distinguishes them because
            // its links are otherwise perfectly FIFO).
            LinkDecision::Delay(d) | LinkDecision::Reorder(d) => {
                let _ = self.delay.send((
                    Instant::now() + d,
                    to.as_usize(),
                    NodeEvent::Message { from: self.me, msg },
                ));
            }
            LinkDecision::Duplicate(d) => {
                let _ = peer.send(NodeEvent::Message {
                    from: self.me,
                    msg: msg.clone(),
                });
                let _ = self.delay.send((
                    Instant::now() + d,
                    to.as_usize(),
                    NodeEvent::Message { from: self.me, msg },
                ));
            }
        }
    }
}

impl<M: Clone> Egress<M> for ShimmedMpscEgress<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        self.route(to, msg);
    }

    fn broadcast(&mut self, msg: M) {
        for i in 0..self.peers.len() {
            if i != self.me.as_usize() {
                self.route(NodeId(i as u32), msg.clone());
            }
        }
    }
}

/// A running threaded cluster.
pub struct ThreadedCluster<M> {
    core: ClusterCore<M>,
    handles: Vec<JoinHandle<()>>,
    delay: Option<DelayLine<NodeEvent<M>>>,
    /// Ingress handler installed by [`ThreadedCluster::attach_rpc`]; the
    /// channel-backed analogue of the TCP runtime's client listeners.
    rpc: Option<Arc<dyn crate::rpc::RpcHandler>>,
}

impl<M> ThreadedCluster<M>
where
    M: Clone + Send + Sync + std::fmt::Debug + 'static,
{
    /// Spawns one thread per node and starts the protocol, fault-free.
    pub fn spawn<P>(nodes: Vec<P>) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_with_faults(nodes, None)
    }

    /// Spawns the cluster with an optional [`FaultPlan`] compiled into a
    /// link shim on every node's egress (drop/delay/reorder/duplicate and
    /// partitions; node faults are driven by the caller through
    /// [`ThreadedCluster::pause`] / [`ThreadedCluster::resume`] /
    /// [`ThreadedCluster::crash`]). The plan's time offsets are measured
    /// from this call.
    pub fn spawn_with_faults<P>(nodes: Vec<P>, faults: Option<FaultPlan>) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_full(nodes, faults, None)
    }

    /// Spawns the cluster with an optional fault plan and an optional
    /// [`PreVerify`] hook. With a hook, every node gets a pre-verify stage
    /// thread between its ingress channel and its event loop: inbound
    /// messages are batch-verified (and shared broadcasts materialized)
    /// off-loop, so the consensus loop consumes already-validated
    /// messages. The stage preserves per-sender FIFO order — it forwards
    /// the single ingress stream in order.
    pub fn spawn_full<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<std::sync::Arc<dyn PreVerify<M>>>,
    ) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_durable(nodes, faults, pre_verify, None)
    }

    /// Like [`ThreadedCluster::spawn_full`], additionally installing a
    /// rebuild hook: after [`ThreadedCluster::kill`] destroys a node's
    /// protocol state, [`ThreadedCluster::restart`] invokes the hook to
    /// reconstruct the node — typically from its durable store — and
    /// re-enters it into the cluster on the same thread and channels.
    pub fn spawn_durable<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<std::sync::Arc<dyn PreVerify<M>>>,
        rebuild: Option<Arc<dyn Fn(NodeId) -> P + Send + Sync>>,
    ) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        Self::spawn_cluster(nodes, faults, pre_verify, rebuild, &[])
    }

    /// The full spawn: like [`ThreadedCluster::spawn_durable`], with some
    /// nodes additionally spawned **dormant** (late join): a dormant node's
    /// thread and channels come up with everyone else's, but its protocol
    /// state machine is dropped before it ever starts — no `on_start`, no
    /// traffic, its durable store (if any) closed. A later
    /// [`ThreadedCluster::restart`] rebuilds it through the rebuild hook,
    /// which is how a node enters the cluster mid-run and catches up
    /// through state sync.
    pub fn spawn_cluster<P>(
        nodes: Vec<P>,
        faults: Option<FaultPlan>,
        pre_verify: Option<std::sync::Arc<dyn PreVerify<M>>>,
        rebuild: Option<Arc<dyn Fn(NodeId) -> P + Send + Sync>>,
        dormant: &[NodeId],
    ) -> Self
    where
        P: Protocol<Msg = M> + Send + 'static,
    {
        let (core, mut receivers) = ClusterCore::new(nodes.len());
        for node in dormant {
            core.set_dormant(*node);
        }
        let mut stage_handles = Vec::new();
        if let Some(pv) = &pre_verify {
            let (staged, spawned) = spawn_preverify_stages(receivers, pv);
            receivers = staged;
            stage_handles = spawned;
        }
        let delay = faults
            .as_ref()
            .map(|_| DelayLine::new(core.evt_senders.iter().cloned().map(Some).collect()));
        let start = core.log.start();
        let mut handles = Vec::with_capacity(nodes.len());
        for (i, (node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let me = NodeId(i as u32);
            let log = core.log.clone();
            let flags = core.flags();
            let rebuild = rebuild.clone();
            let peers = core.evt_senders.clone();
            match &faults {
                None => {
                    let mut egress = MpscEgress { me, peers };
                    handles.push(std::thread::spawn(move || {
                        run_node(node, me, rx, &mut egress, log, flags, rebuild);
                    }));
                }
                Some(plan) => {
                    let mut egress = ShimmedMpscEgress {
                        me,
                        peers,
                        shim: LinkShim::new(plan.clone(), start),
                        delay: delay.as_ref().expect("delay line exists").sender(),
                    };
                    handles.push(std::thread::spawn(move || {
                        run_node(node, me, rx, &mut egress, log, flags, rebuild);
                    }));
                }
            }
        }
        handles.extend(stage_handles);
        ThreadedCluster {
            core,
            handles,
            delay,
            rpc: None,
        }
    }

    /// Installs the ingress handler — the channel-backed equivalent of
    /// [`crate::TcpCluster::serve_rpc`]: clients call
    /// [`ThreadedCluster::rpc_call`] instead of dialing a socket, and an
    /// accepted submission enters the node through the same event channel
    /// as [`ThreadedCluster::submit`].
    pub fn attach_rpc(&mut self, handler: Arc<dyn crate::rpc::RpcHandler>) {
        self.rpc = Some(handler);
    }

    /// Serves one client RPC against `node` through the attached handler.
    /// Returns `None` when no handler is attached.
    pub fn rpc_call(
        &self,
        node: NodeId,
        msg: &fireledger_types::rpc::RpcMsg,
    ) -> Option<fireledger_types::rpc::RpcMsg> {
        let handler = self.rpc.as_ref()?;
        let (reply, tx) = handler.handle(node, msg);
        if let Some(tx) = tx {
            self.core.submit(node, tx);
        }
        Some(reply)
    }

    /// `node`'s availability as mirrored by its own event loop.
    pub fn node_status(&self, node: NodeId) -> crate::NodeStatus {
        crate::NodeStatus::from_u8(self.core.status(node))
    }

    /// Threads this cluster is running: one per node, plus any pre-verify
    /// stage threads (no socket engine — links are in-process channels).
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Submits a client transaction to `node`.
    pub fn submit(&self, node: NodeId, tx: Transaction) {
        self.core.submit(node, tx);
    }

    /// Crashes `node`: a flag the node's thread checks before every event
    /// makes it stop promptly — it does not drain its message backlog first —
    /// and its peers' subsequent sends to it disappear (a benign crash fault,
    /// the shape of the paper's §7.4.1 experiment). The thread notices the
    /// flag within its timer poll interval (≤ ~10 ms). Idempotent.
    pub fn crash(&self, node: NodeId) {
        self.core.crash(node);
    }

    /// Pauses `node` (the crash half of a crash-recover fault): its thread
    /// discards events and expires timers silently until
    /// [`ThreadedCluster::resume`]. Protocol state is kept.
    pub fn pause(&self, node: NodeId) {
        self.core.pause(node);
    }

    /// Resumes a paused `node`.
    pub fn resume(&self, node: NodeId) {
        self.core.resume(node);
    }

    /// Kills `node`: its protocol state machine is dropped outright —
    /// in-memory state destroyed, durable store closed, delivery log
    /// cleared — while the thread and channels stay up to host a possible
    /// restart. Harsher than [`ThreadedCluster::pause`], which keeps state.
    pub fn kill(&self, node: NodeId) {
        self.core.kill(node);
    }

    /// Restarts a killed `node` through the rebuild hook installed by
    /// [`ThreadedCluster::spawn_durable`] (ignored without one): the node
    /// is reconstructed from its durable store and rejoins the cluster.
    pub fn restart(&self, node: NodeId) {
        self.core.restart(node);
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// Blocks delivered so far at `node` (a snapshot).
    pub fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        self.core.deliveries(node)
    }

    /// Wall-clock offsets (from cluster start) of `node`'s deliveries.
    pub fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        self.core.delivery_times(node)
    }

    /// The instant the cluster's clock started (the zero point of
    /// [`ThreadedCluster::delivery_times`]).
    pub fn start(&self) -> std::time::Instant {
        self.core.log.start()
    }

    /// Stops all node threads and returns the final per-node deliveries.
    pub fn shutdown(self) -> Vec<Vec<Delivery>> {
        self.core.signal_shutdown();
        for h in self.handles {
            let _ = h.join();
        }
        if let Some(delay) = self.delay {
            delay.stop();
        }
        self.core.take_deliveries()
    }
}

impl<M> RealtimeCluster for ThreadedCluster<M>
where
    M: Clone + Send + Sync + std::fmt::Debug + 'static,
{
    fn submit(&self, node: NodeId, tx: Transaction) {
        ThreadedCluster::submit(self, node, tx);
    }
    fn crash(&self, node: NodeId) {
        ThreadedCluster::crash(self, node);
    }
    fn pause(&self, node: NodeId) {
        ThreadedCluster::pause(self, node);
    }
    fn resume(&self, node: NodeId) {
        ThreadedCluster::resume(self, node);
    }
    fn kill(&self, node: NodeId) {
        ThreadedCluster::kill(self, node);
    }
    fn restart(&self, node: NodeId) {
        ThreadedCluster::restart(self, node);
    }
    fn node_status(&self, node: NodeId) -> crate::NodeStatus {
        ThreadedCluster::node_status(self, node)
    }
    fn thread_count(&self) -> usize {
        ThreadedCluster::thread_count(self)
    }
    fn rpc(
        &self,
        node: NodeId,
        msg: &fireledger_types::rpc::RpcMsg,
    ) -> Option<fireledger_types::rpc::RpcMsg> {
        ThreadedCluster::rpc_call(self, node, msg)
    }
    fn deliveries(&self, node: NodeId) -> Vec<Delivery> {
        ThreadedCluster::deliveries(self, node)
    }
    fn delivery_times(&self, node: NodeId) -> Vec<Duration> {
        ThreadedCluster::delivery_times(self, node)
    }
    fn start(&self) -> std::time::Instant {
        ThreadedCluster::start(self)
    }
    fn shutdown(self) -> Vec<Vec<Delivery>> {
        ThreadedCluster::shutdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{Outbox, Round, TimerId};
    use std::time::Duration;

    /// A trivial protocol: node 0 broadcasts a counter on start; everyone
    /// delivers what it receives. Exercises the runtime plumbing without
    /// depending on the core crate (which would be a dependency cycle).
    struct Echo {
        me: NodeId,
        n: usize,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn node_id(&self) -> NodeId {
            self.me
        }
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            if self.me == NodeId(0) {
                out.broadcast(7);
                out.set_timer(TimerId(1), Duration::from_millis(5));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            out.deliver(Delivery {
                worker: fireledger_types::WorkerId(0),
                round: Round(msg),
                proposer: from,
                block: fireledger_types::Block::new(
                    fireledger_types::BlockHeader::new(
                        Round(msg),
                        fireledger_types::WorkerId(0),
                        from,
                        fireledger_types::GENESIS_HASH,
                        fireledger_types::GENESIS_HASH,
                        0,
                        0,
                    ),
                    vec![],
                ),
            });
        }
        fn on_timer(&mut self, _timer: TimerId, out: &mut Outbox<u64>) {
            out.broadcast(8);
            let _ = self.n;
        }
    }

    #[test]
    fn threaded_cluster_routes_messages_and_timers() {
        let nodes: Vec<Echo> = (0..4)
            .map(|i| Echo {
                me: NodeId(i),
                n: 4,
            })
            .collect();
        let cluster = ThreadedCluster::spawn(nodes);
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert!(
                rounds.contains(&7),
                "node {i} missed the broadcast: {rounds:?}"
            );
            assert!(
                rounds.contains(&8),
                "node {i} missed the timer broadcast: {rounds:?}"
            );
        }
    }

    #[test]
    fn preverify_stage_drops_rejected_messages_and_forwards_the_rest() {
        use crate::node_loop::{PreVerify, Verdict};
        use std::sync::Arc;

        /// Drops every odd value — standing in for "invalid signature".
        struct DropOdd;
        impl PreVerify<u64> for DropOdd {
            fn check(&self, _from: NodeId, msg: &u64) -> Verdict {
                if msg.is_multiple_of(2) {
                    Verdict::Forward
                } else {
                    Verdict::Drop
                }
            }
        }

        struct Burst {
            me: NodeId,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, out: &mut Outbox<u64>) {
                if self.me == NodeId(0) {
                    for v in 0..10u64 {
                        out.broadcast(v);
                    }
                }
            }
            fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
                out.deliver(Delivery {
                    worker: fireledger_types::WorkerId(0),
                    round: Round(msg),
                    proposer: from,
                    block: fireledger_types::Block::new(
                        fireledger_types::BlockHeader::new(
                            Round(msg),
                            fireledger_types::WorkerId(0),
                            from,
                            fireledger_types::GENESIS_HASH,
                            fireledger_types::GENESIS_HASH,
                            0,
                            0,
                        ),
                        vec![],
                    ),
                });
            }
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
        }

        let nodes: Vec<Burst> = (0..3).map(|i| Burst { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn_full(nodes, None, Some(Arc::new(DropOdd)));
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert_eq!(
                rounds,
                vec![0, 2, 4, 6, 8],
                "node {i}: odd messages must be dropped off-loop, evens forwarded in order"
            );
        }
    }

    #[test]
    fn transactions_reach_the_target_node() {
        struct TxEcho {
            me: NodeId,
        }
        impl Protocol for TxEcho {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.broadcast(tx.seq);
            }
        }
        let nodes: Vec<TxEcho> = (0..2).map(|i| TxEcho { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.submit(NodeId(0), Transaction::zeroed(1, 42, 4));
        std::thread::sleep(Duration::from_millis(50));
        // No panic and clean shutdown is the contract here.
        let _ = cluster.shutdown();
    }

    #[test]
    fn drop_all_plan_silences_every_link() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        let nodes: Vec<Echo> = (0..4)
            .map(|i| Echo {
                me: NodeId(i),
                n: 4,
            })
            .collect();
        let plan = FaultPlan::named("blackout").drop(LinkSelector::All, FaultWindow::ALWAYS, 1.0);
        let cluster = ThreadedCluster::spawn_with_faults(nodes, Some(plan));
        std::thread::sleep(Duration::from_millis(60));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate() {
            assert!(
                delivered.is_empty(),
                "node {i} received {} messages through a 100% drop plan",
                delivered.len()
            );
        }
    }

    #[test]
    fn drop_from_one_node_only_silences_that_sender() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        // Node 0 broadcasts; a From(0) drop plan must starve everyone, while
        // a From(1) plan must not.
        for (lossy, expect_delivery) in [(NodeId(0), false), (NodeId(1), true)] {
            let nodes: Vec<Echo> = (0..4)
                .map(|i| Echo {
                    me: NodeId(i),
                    n: 4,
                })
                .collect();
            let plan = FaultPlan::named("one-lossy").drop(
                LinkSelector::From(lossy),
                FaultWindow::ALWAYS,
                1.0,
            );
            let cluster = ThreadedCluster::spawn_with_faults(nodes, Some(plan));
            std::thread::sleep(Duration::from_millis(60));
            let deliveries = cluster.shutdown();
            let got_any = deliveries.iter().any(|d| !d.is_empty());
            assert_eq!(
                got_any, expect_delivery,
                "lossy sender {lossy}: unexpected delivery outcome"
            );
        }
    }

    #[test]
    fn self_sends_are_exempt_from_the_plan() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        // A node sending to itself never touches the network, so even a
        // drop-everything plan must not intercept it (sim and tcp give
        // self-sends the same exemption).
        struct SelfLoop {
            me: NodeId,
        }
        impl Protocol for SelfLoop {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
                if from == self.me {
                    out.deliver(Delivery {
                        worker: fireledger_types::WorkerId(0),
                        round: Round(msg),
                        proposer: from,
                        block: fireledger_types::Block::new(
                            fireledger_types::BlockHeader::new(
                                Round(msg),
                                fireledger_types::WorkerId(0),
                                from,
                                fireledger_types::GENESIS_HASH,
                                fireledger_types::GENESIS_HASH,
                                0,
                                0,
                            ),
                            vec![],
                        ),
                    });
                }
            }
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.send(self.me, tx.seq);
            }
        }
        let nodes: Vec<SelfLoop> = (0..2).map(|i| SelfLoop { me: NodeId(i) }).collect();
        let plan = FaultPlan::named("blackout").drop(LinkSelector::All, FaultWindow::ALWAYS, 1.0);
        let cluster = ThreadedCluster::spawn_with_faults(nodes, Some(plan));
        cluster.submit(NodeId(0), Transaction::zeroed(1, 9, 4));
        std::thread::sleep(Duration::from_millis(60));
        let deliveries = cluster.shutdown();
        assert_eq!(
            deliveries[0].iter().map(|d| d.round.0).collect::<Vec<_>>(),
            vec![9],
            "the self-send must survive a 100% drop plan"
        );
    }

    #[test]
    fn delayed_links_deliver_late_but_deliver() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        let nodes: Vec<Echo> = (0..4)
            .map(|i| Echo {
                me: NodeId(i),
                n: 4,
            })
            .collect();
        // Every message parked 30–40 ms on the delay line.
        let plan = FaultPlan::named("laggy").delay(
            LinkSelector::All,
            FaultWindow::ALWAYS,
            Duration::from_millis(30),
            Duration::from_millis(40),
        );
        let cluster = ThreadedCluster::spawn_with_faults(nodes, Some(plan));
        // Before the delay elapses nothing can have arrived.
        std::thread::sleep(Duration::from_millis(10));
        for i in 1..4 {
            assert!(
                cluster.deliveries(NodeId(i)).is_empty(),
                "node {i} received a message faster than the injected delay"
            );
        }
        // Well after the delay, the initial broadcast must be through.
        std::thread::sleep(Duration::from_millis(100));
        let times = cluster.delivery_times(NodeId(1));
        let deliveries = cluster.shutdown();
        for (i, delivered) in deliveries.iter().enumerate().skip(1) {
            let rounds: Vec<u64> = delivered.iter().map(|d| d.round.0).collect();
            assert!(rounds.contains(&7), "node {i} never got the broadcast");
        }
        // Delivery timestamps respect the injected floor.
        assert!(!times.is_empty());
        assert!(
            times[0] >= Duration::from_millis(30),
            "first delivery at {:?}, before the 30 ms delay floor",
            times[0]
        );
    }

    #[test]
    fn duplicate_plan_delivers_extra_copies() {
        use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
        let nodes: Vec<Echo> = (0..2)
            .map(|i| Echo {
                me: NodeId(i),
                n: 2,
            })
            .collect();
        let plan = FaultPlan::named("dup").duplicate(
            LinkSelector::All,
            FaultWindow::ALWAYS,
            1.0,
            Duration::from_millis(5),
            Duration::from_millis(10),
        );
        let cluster = ThreadedCluster::spawn_with_faults(nodes, Some(plan));
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        let round7 = deliveries[1].iter().filter(|d| d.round.0 == 7).count();
        assert!(
            round7 >= 2,
            "expected the duplicated broadcast at least twice, got {round7}"
        );
    }

    #[test]
    fn paused_node_misses_traffic_and_resumes_with_state_intact() {
        struct TxDeliver {
            me: NodeId,
        }
        impl Protocol for TxDeliver {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.deliver(Delivery {
                    worker: fireledger_types::WorkerId(0),
                    round: Round(tx.seq),
                    proposer: self.me,
                    block: fireledger_types::Block::new(
                        fireledger_types::BlockHeader::new(
                            Round(tx.seq),
                            fireledger_types::WorkerId(0),
                            self.me,
                            fireledger_types::GENESIS_HASH,
                            fireledger_types::GENESIS_HASH,
                            0,
                            0,
                        ),
                        vec![],
                    ),
                });
            }
        }
        let nodes: Vec<TxDeliver> = (0..2).map(|i| TxDeliver { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.submit(NodeId(0), Transaction::zeroed(1, 1, 4));
        std::thread::sleep(Duration::from_millis(40));
        cluster.pause(NodeId(0));
        std::thread::sleep(Duration::from_millis(30));
        // Lost while down.
        cluster.submit(NodeId(0), Transaction::zeroed(1, 2, 4));
        std::thread::sleep(Duration::from_millis(30));
        cluster.resume(NodeId(0));
        std::thread::sleep(Duration::from_millis(30));
        // Processed after recovery.
        cluster.submit(NodeId(0), Transaction::zeroed(1, 3, 4));
        std::thread::sleep(Duration::from_millis(40));
        let deliveries = cluster.shutdown();
        let seqs: Vec<u64> = deliveries[0].iter().map(|d| d.round.0).collect();
        assert_eq!(
            seqs,
            vec![1, 3],
            "pre-pause and post-resume traffic must be processed, downtime traffic lost"
        );
    }

    #[test]
    fn crashed_node_stops_despite_a_queued_backlog() {
        // A crashed node must not drain events that arrive after the crash
        // flag is set, even though its inbox holds work.
        struct TxDeliver {
            me: NodeId,
        }
        impl Protocol for TxDeliver {
            type Msg = u64;
            fn node_id(&self) -> NodeId {
                self.me
            }
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: NodeId, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_timer(&mut self, _t: TimerId, _o: &mut Outbox<u64>) {}
            fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<u64>) {
                out.deliver(Delivery {
                    worker: fireledger_types::WorkerId(0),
                    round: Round(tx.seq),
                    proposer: self.me,
                    block: fireledger_types::Block::new(
                        fireledger_types::BlockHeader::new(
                            Round(tx.seq),
                            fireledger_types::WorkerId(0),
                            self.me,
                            fireledger_types::GENESIS_HASH,
                            fireledger_types::GENESIS_HASH,
                            0,
                            0,
                        ),
                        vec![],
                    ),
                });
            }
        }
        let nodes: Vec<TxDeliver> = (0..2).map(|i| TxDeliver { me: NodeId(i) }).collect();
        let cluster = ThreadedCluster::spawn(nodes);
        cluster.crash(NodeId(1));
        // A backlog submitted after the crash: none of it may be processed.
        for seq in 0..100 {
            cluster.submit(NodeId(1), Transaction::zeroed(1, seq, 4));
        }
        // The survivor keeps working.
        cluster.submit(NodeId(0), Transaction::zeroed(1, 0, 4));
        std::thread::sleep(Duration::from_millis(80));
        let deliveries = cluster.shutdown();
        assert!(
            deliveries[1].is_empty(),
            "crashed node processed {} queued events after its crash",
            deliveries[1].len()
        );
        assert!(!deliveries[0].is_empty());
    }
}
