//! Length-prefixed framing over byte streams (WIRE_FORMAT.md §3).
//!
//! Every message on a FireLedger TCP link travels as one *frame*: the 9-byte
//! versioned [`FrameHeader`] (`FLGR | version | payload length`) followed by
//! exactly `length` payload bytes — the [`WireCodec`](fireledger_types::WireCodec)
//! encoding of one message. Frames are validated strictly on receipt: a bad
//! magic, an unsupported version, an oversized length or a stream that ends
//! mid-frame all tear the connection down (the mesh is static; there is no
//! re-synchronization protocol inside a stream).

use fireledger_types::codec::{CodecError, FrameHeader, FRAME_HEADER_LEN};
use std::io::{self, IoSlice, Read, Write};

fn invalid(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Writes `payload` as one frame: header then payload, no flush.
///
/// # Panics
/// Panics if `payload` exceeds
/// [`MAX_FRAME_LEN`](fireledger_types::codec::MAX_FRAME_LEN) — producing an
/// oversized frame is a local logic error, not a peer's misbehaviour.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let header = FrameHeader::new(payload.len());
    w.write_all(&header.encode())?;
    w.write_all(payload)
}

/// Writes a batch of already-framed buffers as **one vectored write per
/// syscall** instead of one write per frame.
///
/// This is the drain-and-coalesce primitive of the TCP writer threads: all
/// frames queued since the last wakeup go to the kernel together, so a
/// saturated sender pays one syscall (and, with `TCP_NODELAY`, typically one
/// packet train) per wakeup rather than one per message. Partial writes are
/// handled by advancing through the batch and re-issuing the remainder;
/// `Interrupted` is retried; a `write` that accepts zero bytes of a
/// non-empty batch is a `WriteZero` error (the peer is gone).
pub fn write_coalesced<B: AsRef<[u8]>>(w: &mut impl Write, frames: &[B]) -> io::Result<()> {
    let mut idx = 0; // first frame not fully written
    let mut off = 0; // bytes of frames[idx] already written
    loop {
        // Skip exhausted (or empty) frames.
        while idx < frames.len() && frames[idx].as_ref().len() == off {
            idx += 1;
            off = 0;
        }
        if idx >= frames.len() {
            return w.flush();
        }
        let mut slices = Vec::with_capacity(frames.len() - idx);
        slices.push(IoSlice::new(&frames[idx].as_ref()[off..]));
        slices.extend(frames[idx + 1..].iter().map(|f| IoSlice::new(f.as_ref())));
        let written = match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer accepted zero bytes of a frame batch",
                ))
            }
            Ok(k) => k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Advance (idx, off) past the bytes the kernel accepted.
        let mut remaining = written;
        while remaining > 0 {
            let avail = frames[idx].as_ref().len() - off;
            let step = remaining.min(avail);
            off += step;
            remaining -= step;
            if off == frames[idx].as_ref().len() {
                idx += 1;
                off = 0;
            }
        }
    }
}

/// Reads the next frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary). A stream ending *inside* a frame, or a header that fails
/// validation (bad magic / version / oversized length), is an
/// [`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    match read_frame_into(r, &mut payload)? {
        Some(len) => {
            payload.truncate(len);
            Ok(Some(payload))
        }
        None => Ok(None),
    }
}

/// [`read_frame`] with a caller-owned, reused payload buffer.
///
/// Returns the payload length; the payload itself is in `buf[..len]`. The
/// buffer only ever *grows* (to the largest frame seen on the stream), so a
/// reader thread that feeds the same buffer back for every frame performs
/// zero allocations — and zero redundant zero-fills — in steady state.
/// Validation is identical to [`read_frame`].
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish "no next frame" (clean close) from a truncated header.
    // Interrupted reads are retried, matching `read_exact`'s contract.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame header",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let header = FrameHeader::decode(&header).map_err(invalid)?;
    let len = header.len as usize;
    if buf.len() < len {
        buf.resize(len, 0);
    }
    r.read_exact(&mut buf[..len])?;
    Ok(Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::codec::{FRAME_MAGIC, MAX_FRAME_LEN, WIRE_VERSION};

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut stream = frame_bytes(b"hello");
        stream.extend(frame_bytes(b""));
        stream.extend(frame_bytes(&[7u8; 1000]));
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_header_is_an_error() {
        let bytes = frame_bytes(b"abc");
        for cut in 1..FRAME_HEADER_LEN {
            let mut r = &bytes[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let bytes = frame_bytes(b"abcdef");
        for cut in FRAME_HEADER_LEN..bytes.len() {
            let mut r = &bytes[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = frame_bytes(b"x");
        bytes[0] = b'Z';
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = frame_bytes(b"x");
        assert_eq!(bytes[4], WIRE_VERSION);
        bytes[4] = WIRE_VERSION + 1;
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        // A hand-built header claiming a payload over the cap: the reader
        // must refuse without trying to allocate or read the claimed bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    /// A sink that accepts at most `cap` bytes per call — forces the
    /// coalesced writer through its partial-write resumption path.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }
    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn coalesced_write_equals_sequential_writes() {
        let frames = [
            frame_bytes(b"alpha"),
            frame_bytes(b""),
            frame_bytes(&[7u8; 300]),
        ];
        let sequential: Vec<u8> = frames.concat();
        let mut coalesced = Vec::new();
        write_coalesced(&mut coalesced, &frames).unwrap();
        assert_eq!(coalesced, sequential);
        // And the stream still parses frame by frame.
        let mut r = &coalesced[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 300]);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn coalesced_write_survives_partial_writes() {
        let frames = [
            frame_bytes(b"one"),
            frame_bytes(&[9u8; 100]),
            frame_bytes(b"three"),
        ];
        let expected: Vec<u8> = frames.concat();
        for cap in [1usize, 2, 7, 13, 64, 1000] {
            let mut sink = Dribble {
                out: Vec::new(),
                cap,
            };
            write_coalesced(&mut sink, &frames).unwrap();
            assert_eq!(sink.out, expected, "corrupted stream at cap {cap}");
        }
    }

    #[test]
    fn coalesced_write_of_empty_batches_and_empty_frames() {
        let mut out = Vec::new();
        write_coalesced(&mut out, &[] as &[Vec<u8>]).unwrap();
        assert!(out.is_empty());
        // Batches of only empty buffers write nothing and do not error.
        write_coalesced(&mut out, &[Vec::new(), Vec::new()]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn reused_read_buffer_only_grows_and_stays_correct() {
        let mut stream = frame_bytes(&[1u8; 500]);
        stream.extend(frame_bytes(b"tiny"));
        stream.extend(frame_bytes(&[3u8; 200]));
        let mut r = &stream[..];
        let mut buf = Vec::new();
        assert_eq!(read_frame_into(&mut r, &mut buf).unwrap(), Some(500));
        assert_eq!(&buf[..500], &[1u8; 500][..]);
        let cap_after_big = buf.capacity();
        // A smaller frame reuses the buffer without shrinking it; only the
        // prefix is meaningful.
        assert_eq!(read_frame_into(&mut r, &mut buf).unwrap(), Some(4));
        assert_eq!(&buf[..4], b"tiny");
        assert!(buf.capacity() >= cap_after_big, "buffer must not shrink");
        assert_eq!(read_frame_into(&mut r, &mut buf).unwrap(), Some(200));
        assert_eq!(&buf[..200], &[3u8; 200][..]);
        assert_eq!(read_frame_into(&mut r, &mut buf).unwrap(), None, "EOF");
    }

    #[test]
    fn coalesced_write_reports_dead_peers() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_coalesced(&mut Dead, &[frame_bytes(b"x")]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_LEN")]
    fn oversized_writes_panic_locally() {
        struct Sink;
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Claim a huge payload without materializing it: a zero-copy slice
        // this large is impossible to build cheaply, so fake it with repeat.
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let _ = write_frame(&mut Sink, &huge);
    }
}
