//! Length-prefixed framing over byte streams (WIRE_FORMAT.md §3).
//!
//! Every message on a FireLedger TCP link travels as one *frame*: the 9-byte
//! versioned [`FrameHeader`] (`FLGR | version | payload length`) followed by
//! exactly `length` payload bytes — the [`WireCodec`](fireledger_types::WireCodec)
//! encoding of one message. Frames are validated strictly on receipt: a bad
//! magic, an unsupported version, an oversized length or a stream that ends
//! mid-frame all tear the connection down (the mesh is static; there is no
//! re-synchronization protocol inside a stream).

use fireledger_types::codec::{CodecError, FrameHeader, FRAME_HEADER_LEN};
use std::io::{self, Read, Write};

fn invalid(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Writes `payload` as one frame: header then payload, no flush.
///
/// # Panics
/// Panics if `payload` exceeds
/// [`MAX_FRAME_LEN`](fireledger_types::codec::MAX_FRAME_LEN) — producing an
/// oversized frame is a local logic error, not a peer's misbehaviour.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let header = FrameHeader::new(payload.len());
    w.write_all(&header.encode())?;
    w.write_all(payload)
}

/// Reads the next frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary). A stream ending *inside* a frame, or a header that fails
/// validation (bad magic / version / oversized length), is an
/// [`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish "no next frame" (clean close) from a truncated header.
    // Interrupted reads are retried, matching `read_exact`'s contract.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame header",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let header = FrameHeader::decode(&header).map_err(invalid)?;
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::codec::{FRAME_MAGIC, MAX_FRAME_LEN, WIRE_VERSION};

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut stream = frame_bytes(b"hello");
        stream.extend(frame_bytes(b""));
        stream.extend(frame_bytes(&[7u8; 1000]));
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_header_is_an_error() {
        let bytes = frame_bytes(b"abc");
        for cut in 1..FRAME_HEADER_LEN {
            let mut r = &bytes[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let bytes = frame_bytes(b"abcdef");
        for cut in FRAME_HEADER_LEN..bytes.len() {
            let mut r = &bytes[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = frame_bytes(b"x");
        bytes[0] = b'Z';
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = frame_bytes(b"x");
        assert_eq!(bytes[4], WIRE_VERSION);
        bytes[4] = WIRE_VERSION + 1;
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        // A hand-built header claiming a payload over the cap: the reader
        // must refuse without trying to allocate or read the claimed bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_LEN")]
    fn oversized_writes_panic_locally() {
        struct Sink;
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Claim a huge payload without materializing it: a zero-copy slice
        // this large is impossible to build cheaply, so fake it with repeat.
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let _ = write_frame(&mut Sink, &huge);
    }
}
