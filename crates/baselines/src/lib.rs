//! # fireledger-baselines
//!
//! The two state-of-the-art BFT systems FireLedger is compared against in
//! §7.6 of the paper, implemented from scratch over the same [`Protocol`]
//! abstraction and the same network/CPU simulator so the comparison isolates
//! the protocols themselves:
//!
//! * [`hotstuff`] — chained HotStuff with a rotating leader, quorum
//!   certificates and the three-chain commit rule (Figure 16's comparator).
//!   Every replica signs every block, which is the CPU asymmetry the paper
//!   exploits (FireLedger only requires the proposer's signature in the
//!   optimistic case).
//! * [`bftsmart`] — a BFT-SMaRt-style ordering service: a PBFT atomic
//!   broadcast (from `fireledger-bft`) driven by a pipelining batching leader
//!   (Figure 17's comparator);
//! * [`pbft_node`] — classical stop-and-wait PBFT state-machine replication,
//!   the textbook baseline of the matrix.
//!
//! [`Protocol`]: fireledger_types::Protocol

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bftsmart;
pub mod hotstuff;
pub mod pbft_node;

pub use bftsmart::{BftSmartNode, OrderedBatch};
pub use hotstuff::{HotStuffMsg, HotStuffNode};
pub use pbft_node::PbftNode;
