//! A classical PBFT state-machine-replication replica.
//!
//! The paper's experiment matrix includes plain PBFT as one of the compared
//! ordering protocols (it is both a baseline in its own right and the
//! consensus component FireLedger falls back to). [`PbftNode`] drives the
//! PBFT atomic broadcast from `fireledger-bft` as a standalone ordering
//! service in its textbook shape: the view leader proposes **one batch at a
//! time** and only assembles the next one after the previous batch committed.
//! This is precisely the difference to [`crate::BftSmartNode`], which
//! pipelines several batches like the BFT-SMaRt library does — comparing the
//! two isolates the effect of leader pipelining on a three-phase protocol.

use crate::bftsmart::{batch_from_pool, OrderedBatch};
use fireledger_bft::{Pbft, PbftConfig, PbftMsg};
use fireledger_crypto::{merkle_root, SharedCrypto};
use fireledger_types::runtime::CpuCharge;
use fireledger_types::{
    Block, BlockHeader, Delivery, NodeId, Observation, Outbox, Protocol, ProtocolParams, Round,
    TimerId, Transaction, WorkerId,
};
use std::time::Duration;

/// Timer kind for the batch pump.
const TIMER_PUMP: u8 = 4;
/// Timer kind handed to the embedded PBFT instance.
const TIMER_PBFT: u8 = 0xAC;

/// One replica of a classical (unpipelined) PBFT ordering service.
pub struct PbftNode {
    me: NodeId,
    params: ProtocolParams,
    crypto: SharedCrypto,
    pbft: Pbft<OrderedBatch>,
    pool: Vec<Transaction>,
    next_batch_seq: u64,
    /// True while the leader's current batch is still in the three phases.
    inflight: bool,
    delivered_batches: u64,
}

impl PbftNode {
    /// Creates a replica.
    pub fn new(me: NodeId, params: ProtocolParams, crypto: SharedCrypto) -> Self {
        let pbft_cfg = PbftConfig::new(params.cluster)
            .with_timeout((params.base_timeout * 20).max(Duration::from_millis(500)))
            .with_timer_kind(TIMER_PBFT);
        PbftNode {
            me,
            pbft: Pbft::new(me, pbft_cfg),
            pool: Vec::new(),
            next_batch_seq: 0,
            inflight: false,
            delivered_batches: 0,
            params,
            crypto,
        }
    }

    /// Total batches (blocks) this replica has delivered.
    pub fn delivered_batches(&self) -> u64 {
        self.delivered_batches
    }

    fn pump_timer(&self) -> TimerId {
        TimerId::compose(TIMER_PUMP, 0)
    }

    fn pump_interval(&self) -> Duration {
        self.params.base_timeout.max(Duration::from_millis(5))
    }

    /// The leader assembles and submits the next batch once the previous one
    /// has committed (stop-and-wait, the textbook PBFT request flow).
    fn pump(&mut self, out: &mut Outbox<PbftMsg<OrderedBatch>>) {
        if !self.pbft.is_leader() || self.inflight {
            return;
        }
        let seq = self.next_batch_seq;
        let txs = batch_from_pool(
            &mut self.pool,
            self.params.batch_size,
            self.params.tx_size,
            self.params.fill_blocks,
            self.me.0 as u64,
            seq,
        );
        if txs.is_empty() {
            return;
        }
        self.next_batch_seq += 1;
        self.inflight = true;
        let payload_bytes: u64 = txs.iter().map(|t| t.payload.len() as u64).sum();
        // The leader hashes and signs the batch it proposes.
        out.cpu(CpuCharge::sign(payload_bytes));
        out.observe(Observation::BlockProposed {
            worker: WorkerId(0),
            round: Round(seq),
            tx_count: txs.len() as u32,
            payload_bytes,
        });
        let batch = OrderedBatch {
            assembler: self.me,
            seq,
            txs,
        };
        let delivered = self.pbft.submit(batch, out);
        self.handle_delivered(delivered, out);
    }

    fn handle_delivered(
        &mut self,
        delivered: Vec<(u64, OrderedBatch)>,
        out: &mut Outbox<PbftMsg<OrderedBatch>>,
    ) {
        for (seq, batch) in delivered {
            if batch.assembler == self.me {
                self.inflight = false;
            }
            self.delivered_batches += 1;
            let payload_bytes: u64 = batch.txs.iter().map(|t| t.payload.len() as u64).sum();
            // Replicas hash the batch to validate the payload commitment.
            out.cpu(CpuCharge::hash(payload_bytes));
            let payload_hash = merkle_root(&batch.txs);
            let header = BlockHeader::new(
                Round(seq),
                WorkerId(0),
                batch.assembler,
                fireledger_types::GENESIS_HASH,
                payload_hash,
                batch.txs.len() as u32,
                payload_bytes,
            );
            out.observe(Observation::DefiniteDecision {
                worker: WorkerId(0),
                round: Round(seq),
                tx_count: batch.txs.len() as u32,
                payload_bytes,
            });
            out.observe(Observation::FloDelivery {
                worker: WorkerId(0),
                round: Round(seq),
            });
            out.deliver(Delivery {
                worker: WorkerId(0),
                round: Round(seq),
                proposer: batch.assembler,
                block: Block::new(header, batch.txs),
            });
        }
    }
}

impl Protocol for PbftNode {
    type Msg = PbftMsg<OrderedBatch>;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, out: &mut Outbox<Self::Msg>) {
        let _ = &self.crypto; // the crypto provider anchors the cost model
        self.pump(out);
        out.set_timer(self.pump_timer(), self.pump_interval());
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        let delivered = self.pbft.on_message(from, msg, out);
        self.handle_delivered(delivered, out);
        self.pump(out);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<Self::Msg>) {
        let (kind, _) = timer.decompose();
        match kind {
            TIMER_PUMP => {
                self.pump(out);
                out.set_timer(self.pump_timer(), self.pump_interval());
            }
            TIMER_PBFT => {
                self.pbft.on_timer(timer, out);
            }
            _ => {}
        }
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<Self::Msg>) {
        self.pool.push(tx);
        self.pump(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::{SimConfig, Simulation};

    fn cluster(n: usize, batch: usize) -> Vec<PbftNode> {
        let params = ProtocolParams::new(n)
            .with_batch_size(batch)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(10));
        let crypto = SimKeyStore::generate(n, 9).shared();
        (0..n)
            .map(|i| PbftNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect()
    }

    #[test]
    fn pbft_replicas_deliver_identical_orders() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(500));
        let seq = |n: u32| {
            sim.deliveries(NodeId(n))
                .iter()
                .map(|d| (d.round, d.block.header.payload_hash))
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        assert!(reference.len() > 3);
        for i in 1..4 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            assert_eq!(other[..common], reference[..common], "replica {i} diverged");
        }
    }

    #[test]
    fn stop_and_wait_is_slower_than_bftsmart_pipelining() {
        use crate::BftSmartNode;
        let params = ProtocolParams::new(4)
            .with_batch_size(10)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(10));
        let crypto = SimKeyStore::generate(4, 9).shared();
        let pbft: Vec<PbftNode> = (0..4)
            .map(|i| PbftNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect();
        let smart: Vec<BftSmartNode> = (0..4)
            .map(|i| BftSmartNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect();
        let mut sim_p = Simulation::new(SimConfig::ideal(), pbft);
        let mut sim_s = Simulation::new(SimConfig::ideal(), smart);
        sim_p.run_for(Duration::from_millis(400));
        sim_s.run_for(Duration::from_millis(400));
        let p = sim_p.deliveries(NodeId(0)).len();
        let s = sim_s.deliveries(NodeId(0)).len();
        assert!(p > 0);
        assert!(
            s >= p,
            "pipelined BFT-SMaRt ({s}) should not trail PBFT ({p})"
        );
    }
}
