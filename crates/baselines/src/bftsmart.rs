//! A BFT-SMaRt-style ordering service — the baseline of Figure 17 and the
//! previous state of the art the paper cites (§2, §7.6).
//!
//! BFT-SMaRt is a PBFT-lineage state-machine-replication library: a stable
//! leader batches client requests and runs the classical three-phase
//! (pre-prepare / prepare / commit) agreement with O(n²) messages per batch;
//! a timeout-triggered leader change provides liveness. We reuse the PBFT
//! atomic broadcast from `fireledger-bft` (the same component FireLedger uses
//! as its fallback/recovery consensus layer) and drive it with a batching
//! leader, so the comparison against FLO isolates exactly the difference the
//! paper highlights: every block pays the full three-phase quadratic exchange
//! here, versus a single all-to-all bit exchange on FireLedger's optimistic
//! path.

use fireledger_bft::{Pbft, PbftConfig, PbftMsg};
use fireledger_crypto::{merkle_root, SharedCrypto};
use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::runtime::CpuCharge;
use fireledger_types::{
    Block, BlockHeader, Delivery, NodeId, Observation, Outbox, Protocol, ProtocolParams, Round,
    TimerId, Transaction, WireSize, WorkerId,
};
use std::time::Duration;

/// A batch of transactions submitted to the ordering service.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OrderedBatch {
    /// The node that assembled the batch.
    pub assembler: NodeId,
    /// Assembler-local sequence number (keeps equal batches distinct).
    pub seq: u64,
    /// The transactions.
    pub txs: Vec<Transaction>,
}

impl WireSize for OrderedBatch {
    fn wire_size(&self) -> usize {
        4 + 8 + self.txs.wire_size()
    }
}

/// Layout per WIRE_FORMAT.md §7.3:
/// `assembler u32 | seq u64 | txs Vec<Transaction>`. PBFT and the
/// BFT-SMaRt-style service exchange these inside [`PbftMsg`] (§5.2).
impl WireCodec for OrderedBatch {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.assembler.encode_to(out);
        self.seq.encode_to(out);
        self.txs.encode_to(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OrderedBatch {
            assembler: NodeId::decode_from(r)?,
            seq: r.u64()?,
            txs: Vec::<Transaction>::decode_from(r)?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + 8 + self.txs.encoded_len()
    }
}

/// Timer kind for the batch pump.
const TIMER_PUMP: u8 = 3;
/// Timer kind handed to the embedded PBFT instance.
const TIMER_PBFT: u8 = 0xAB;

/// Takes up to `batch_size` transactions from `pool`, padding with synthetic
/// `tx_size`-byte transactions when `fill` is set (the paper's saturated-load
/// mode). Shared with the HotStuff baseline.
pub fn batch_from_pool(
    pool: &mut Vec<Transaction>,
    batch_size: usize,
    tx_size: usize,
    fill: bool,
    assembler: u64,
    seq: u64,
) -> Vec<Transaction> {
    let take = pool.len().min(batch_size);
    let mut txs: Vec<Transaction> = pool.drain(..take).collect();
    if fill && txs.len() < batch_size {
        // All fillers of one batch are byte-identical zeroes: allocate the
        // payload once and share it (reference bumps per transaction).
        let payload = fireledger_types::Bytes::from(vec![0u8; tx_size]);
        let mut filler = txs.len() as u64;
        while txs.len() < batch_size {
            txs.push(Transaction::new(
                2_000_000 + assembler,
                seq * batch_size as u64 + filler,
                payload.clone(),
            ));
            filler += 1;
        }
    }
    txs
}

/// One replica of the BFT-SMaRt-style ordering service.
pub struct BftSmartNode {
    me: NodeId,
    params: ProtocolParams,
    crypto: SharedCrypto,
    pbft: Pbft<OrderedBatch>,
    pool: Vec<Transaction>,
    next_batch_seq: u64,
    /// Number of batches the leader keeps in flight (pipelining).
    pipeline: usize,
    inflight: usize,
    delivered_batches: u64,
}

impl BftSmartNode {
    /// Creates a replica.
    pub fn new(me: NodeId, params: ProtocolParams, crypto: SharedCrypto) -> Self {
        let pbft_cfg = PbftConfig::new(params.cluster)
            .with_timeout((params.base_timeout * 20).max(Duration::from_millis(500)))
            .with_timer_kind(TIMER_PBFT);
        BftSmartNode {
            me,
            pbft: Pbft::new(me, pbft_cfg),
            pool: Vec::new(),
            next_batch_seq: 0,
            pipeline: 4,
            inflight: 0,
            delivered_batches: 0,
            params,
            crypto,
        }
    }

    /// Total batches (blocks) this replica has delivered.
    pub fn delivered_batches(&self) -> u64 {
        self.delivered_batches
    }

    fn pump_timer(&self) -> TimerId {
        TimerId::compose(TIMER_PUMP, 0)
    }

    fn pump_interval(&self) -> Duration {
        self.params.base_timeout.max(Duration::from_millis(5))
    }

    /// The (stable) leader assembles and submits new batches while it has
    /// pipeline budget.
    fn pump(&mut self, out: &mut Outbox<PbftMsg<OrderedBatch>>) {
        if !self.pbft.is_leader() {
            return;
        }
        while self.inflight < self.pipeline {
            let seq = self.next_batch_seq;
            let txs = batch_from_pool(
                &mut self.pool,
                self.params.batch_size,
                self.params.tx_size,
                self.params.fill_blocks,
                self.me.0 as u64,
                seq,
            );
            if txs.is_empty() {
                break;
            }
            self.next_batch_seq += 1;
            self.inflight += 1;
            let payload_bytes: u64 = txs.iter().map(|t| t.payload.len() as u64).sum();
            // The leader hashes and signs the batch it proposes.
            out.cpu(CpuCharge::sign(payload_bytes));
            out.observe(Observation::BlockProposed {
                worker: WorkerId(0),
                round: Round(seq),
                tx_count: txs.len() as u32,
                payload_bytes,
            });
            let batch = OrderedBatch {
                assembler: self.me,
                seq,
                txs,
            };
            let delivered = self.pbft.submit(batch, out);
            self.handle_delivered(delivered, out);
        }
    }

    fn handle_delivered(
        &mut self,
        delivered: Vec<(u64, OrderedBatch)>,
        out: &mut Outbox<PbftMsg<OrderedBatch>>,
    ) {
        for (seq, batch) in delivered {
            if batch.assembler == self.me {
                self.inflight = self.inflight.saturating_sub(1);
            }
            self.delivered_batches += 1;
            let payload_bytes: u64 = batch.txs.iter().map(|t| t.payload.len() as u64).sum();
            // Replicas hash the batch to validate the payload commitment.
            out.cpu(CpuCharge::hash(payload_bytes));
            let payload_hash = merkle_root(&batch.txs);
            let header = BlockHeader::new(
                Round(seq),
                WorkerId(0),
                batch.assembler,
                fireledger_types::GENESIS_HASH,
                payload_hash,
                batch.txs.len() as u32,
                payload_bytes,
            );
            out.observe(Observation::DefiniteDecision {
                worker: WorkerId(0),
                round: Round(seq),
                tx_count: batch.txs.len() as u32,
                payload_bytes,
            });
            out.observe(Observation::FloDelivery {
                worker: WorkerId(0),
                round: Round(seq),
            });
            out.deliver(Delivery {
                worker: WorkerId(0),
                round: Round(seq),
                proposer: batch.assembler,
                block: Block::new(header, batch.txs),
            });
        }
    }
}

impl Protocol for BftSmartNode {
    type Msg = PbftMsg<OrderedBatch>;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, out: &mut Outbox<Self::Msg>) {
        let _ = &self.crypto; // the crypto provider anchors the cost model
        self.pump(out);
        out.set_timer(self.pump_timer(), self.pump_interval());
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        let delivered = self.pbft.on_message(from, msg, out);
        self.handle_delivered(delivered, out);
        self.pump(out);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<Self::Msg>) {
        let (kind, _) = timer.decompose();
        match kind {
            TIMER_PUMP => {
                self.pump(out);
                out.set_timer(self.pump_timer(), self.pump_interval());
            }
            TIMER_PBFT => {
                self.pbft.on_timer(timer, out);
            }
            _ => {}
        }
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<Self::Msg>) {
        self.pool.push(tx);
        self.pump(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::{SimConfig, Simulation};

    fn cluster(n: usize, batch: usize) -> Vec<BftSmartNode> {
        let params = ProtocolParams::new(n)
            .with_batch_size(batch)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(10));
        let crypto = SimKeyStore::generate(n, 9).shared();
        (0..n)
            .map(|i| BftSmartNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect()
    }

    #[test]
    fn ordering_service_delivers_batches_to_all_replicas() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(500));
        for i in 0..4u32 {
            assert!(
                sim.node(NodeId(i)).delivered_batches() > 5,
                "replica {i} delivered {}",
                sim.node(NodeId(i)).delivered_batches()
            );
        }
    }

    #[test]
    fn delivered_order_is_identical_across_replicas() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 5));
        sim.run_for(Duration::from_millis(400));
        let seq = |n: u32| {
            sim.deliveries(NodeId(n))
                .iter()
                .map(|d| (d.round, d.block.header.payload_hash))
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        assert!(reference.len() > 3);
        for i in 1..4 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            assert_eq!(other[..common], reference[..common], "replica {i} diverged");
        }
    }

    #[test]
    fn real_client_transactions_are_ordered() {
        let mut nodes = cluster(4, 4);
        for n in &mut nodes {
            n.params.fill_blocks = false;
        }
        let mut sim = Simulation::new(SimConfig::ideal(), nodes);
        let tx = Transaction::new(5, 1, vec![7u8; 64]);
        // Submit to the leader (node 0 in view 0).
        sim.inject_transaction(NodeId(0), tx.clone(), Duration::from_millis(1));
        sim.run_for(Duration::from_millis(300));
        let delivered: Vec<Transaction> = sim
            .deliveries(NodeId(3))
            .iter()
            .flat_map(|d| d.block.txs.clone())
            .collect();
        assert!(delivered.contains(&tx));
    }

    #[test]
    fn batch_from_pool_drains_and_fills() {
        let mut pool = vec![Transaction::zeroed(1, 0, 8), Transaction::zeroed(1, 1, 8)];
        let batch = batch_from_pool(&mut pool, 4, 8, true, 0, 0);
        assert_eq!(batch.len(), 4);
        assert!(pool.is_empty());
        let batch2 = batch_from_pool(&mut pool, 4, 8, false, 0, 1);
        assert!(batch2.is_empty());
        // Filler ids never collide across batches/assemblers.
        let b1 = batch_from_pool(&mut pool, 3, 8, true, 1, 7);
        let b2 = batch_from_pool(&mut pool, 3, 8, true, 2, 7);
        let ids: std::collections::HashSet<_> =
            b1.iter().chain(b2.iter()).map(|t| t.id()).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn quadratic_message_pattern_is_visible() {
        // Per delivered batch the cluster exchanges O(n²) prepare/commit
        // messages, far more than FireLedger's n votes.
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(300));
        let s = sim.summary();
        let batches: u64 = sim.node(NodeId(0)).delivered_batches();
        assert!(batches > 0);
        assert!(
            s.msgs_sent as f64 / batches as f64 > 12.0,
            "expected ≥ n² messages per batch"
        );
    }

    #[test]
    fn codec_roundtrips_ordered_batches_inside_pbft_messages() {
        let batch = OrderedBatch {
            assembler: NodeId(2),
            seq: 9,
            txs: vec![
                Transaction::zeroed(1, 0, 32),
                Transaction::new(3, 4, vec![5]),
            ],
        };
        assert_eq!(OrderedBatch::decode(&batch.encode()).unwrap(), batch);
        // The batch as it actually travels: wrapped in the PBFT layout.
        let msg = PbftMsg::PrePrepare {
            view: 0,
            seq: 1,
            value: batch,
        };
        assert_eq!(PbftMsg::<OrderedBatch>::decode(&msg.encode()).unwrap(), msg);
    }
}
