//! Chained HotStuff (Yin et al., 2019) — the baseline of Figure 16.
//!
//! The implementation follows the chained ("pipelined") variant with a
//! rotating leader:
//!
//! * the leader of view `v` broadcasts a proposal extending the highest known
//!   quorum certificate (QC);
//! * every replica validates the proposal, **signs** a vote and sends it to
//!   the leader of view `v + 1`;
//! * that leader aggregates `n − f` votes into a QC and proposes the next
//!   block on top of it;
//! * a block becomes committed under the three-chain rule: when it is the
//!   start of three blocks in consecutive views each certified by a QC
//!   (transaction finality of three rounds, as the paper notes in §7.6);
//! * a pacemaker timeout sends a new-view message (carrying the highest QC)
//!   to the next leader so a crashed leader is skipped.
//!
//! The CPU accounting mirrors the paper's argument for FireLedger's
//! advantage: every replica signs every block here, whereas FireLedger's
//! optimistic path needs only the proposer's signature. Signature aggregation
//! keeps HotStuff's *communication* linear, which the wire sizes reflect (a
//! QC costs one aggregate signature, not `n`).

use fireledger_crypto::{merkle_root, SharedCrypto};
use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::runtime::CpuCharge;
use fireledger_types::{
    Block, BlockHeader, Delivery, Hash, NodeId, Observation, Outbox, Protocol, ProtocolParams,
    Round, SignedHeader, TimerId, Transaction, WireSize, WorkerId,
};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

use crate::bftsmart::batch_from_pool;

/// A quorum certificate over the block proposed in `view`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumCert {
    /// The certified view (0 = genesis certificate).
    pub view: u64,
    /// Hash of the certified block header.
    pub block_hash: Hash,
}

impl WireSize for QuorumCert {
    fn wire_size(&self) -> usize {
        // view + hash + one aggregated signature.
        8 + 32 + 64
    }
}

/// Layout per WIRE_FORMAT.md §7.1: `view u64 | block_hash [32]B`.
impl WireCodec for QuorumCert {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.view.encode_to(out);
        self.block_hash.encode_to(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(QuorumCert {
            view: r.u64()?,
            block_hash: Hash::decode_from(r)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 32
    }
}

/// HotStuff wire messages.
//
// `Proposal` dwarfs the vote/pacemaker variants (its header now carries the
// lagged execution state root), but it is also the broadcast-once message —
// boxing it would buy nothing on the wire and cost an allocation per view.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum HotStuffMsg {
    /// Leader proposal for a view: a block extending `justify`.
    Proposal {
        /// The proposal's view.
        view: u64,
        /// The proposed block (header + body).
        header: SignedHeader,
        /// The block body.
        txs: Vec<Transaction>,
        /// QC for the parent.
        justify: QuorumCert,
    },
    /// A replica's signed vote, sent to the next leader.
    Vote {
        /// The voted view.
        view: u64,
        /// Hash of the voted block header.
        block_hash: Hash,
    },
    /// Pacemaker message to the next leader carrying the highest known QC.
    NewView {
        /// The view being entered.
        view: u64,
        /// The sender's highest QC.
        high_qc: QuorumCert,
    },
}

impl WireSize for HotStuffMsg {
    fn wire_size(&self) -> usize {
        match self {
            HotStuffMsg::Proposal {
                header,
                txs,
                justify,
                ..
            } => 8 + header.wire_size() + txs.wire_size() + justify.wire_size(),
            // A vote carries a partial signature.
            HotStuffMsg::Vote { .. } => 8 + 32 + 64,
            HotStuffMsg::NewView { high_qc, .. } => 8 + high_qc.wire_size(),
        }
    }
}

/// Layout per WIRE_FORMAT.md §7.2: a discriminant byte (`0x01` Proposal,
/// `0x02` Vote, `0x03` NewView) followed by the variant's fields in
/// declaration order.
impl WireCodec for HotStuffMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            HotStuffMsg::Proposal {
                view,
                header,
                txs,
                justify,
            } => {
                out.push(1);
                view.encode_to(out);
                header.encode_to(out);
                txs.encode_to(out);
                justify.encode_to(out);
            }
            HotStuffMsg::Vote { view, block_hash } => {
                out.push(2);
                view.encode_to(out);
                block_hash.encode_to(out);
            }
            HotStuffMsg::NewView { view, high_qc } => {
                out.push(3);
                view.encode_to(out);
                high_qc.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(HotStuffMsg::Proposal {
                view: r.u64()?,
                header: SignedHeader::decode_from(r)?,
                txs: Vec::<Transaction>::decode_from(r)?,
                justify: QuorumCert::decode_from(r)?,
            }),
            2 => Ok(HotStuffMsg::Vote {
                view: r.u64()?,
                block_hash: Hash::decode_from(r)?,
            }),
            3 => Ok(HotStuffMsg::NewView {
                view: r.u64()?,
                high_qc: QuorumCert::decode_from(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "HotStuffMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            HotStuffMsg::Proposal {
                header,
                txs,
                justify,
                ..
            } => 8 + header.encoded_len() + txs.encoded_len() + justify.encoded_len(),
            HotStuffMsg::Vote { .. } => 8 + 32,
            HotStuffMsg::NewView { high_qc, .. } => 8 + high_qc.encoded_len(),
        }
    }
}

#[derive(Clone, Debug)]
struct PendingBlock {
    header: SignedHeader,
    txs: Vec<Transaction>,
    parent_view: u64,
}

/// One HotStuff replica.
pub struct HotStuffNode {
    me: NodeId,
    params: ProtocolParams,
    crypto: SharedCrypto,
    view: u64,
    high_qc: QuorumCert,
    /// Blocks by view.
    blocks: HashMap<u64, PendingBlock>,
    /// Vote collection at the (next) leader, per view.
    votes: HashMap<u64, HashSet<NodeId>>,
    /// Views whose block is final (on the committed chain). A view can be
    /// final while its block is still in flight — see `mark_committed_chain`.
    committed: HashSet<u64>,
    /// Parent → child edges of the committed chain, the order blocks are
    /// delivered in.
    chain_child: HashMap<u64, u64>,
    /// Highest view this replica has voted in (vote-once-per-view rule).
    voted_view: u64,
    /// Views this replica has already proposed for (at most one proposal per
    /// view per leader).
    proposed_views: HashSet<u64>,
    /// Highest contiguous committed view delivered to the application.
    last_delivered_view: u64,
    new_views: HashMap<u64, HashSet<NodeId>>,
    pool: Vec<Transaction>,
    committed_blocks: u64,
}

impl HotStuffNode {
    /// Creates a replica.
    pub fn new(me: NodeId, params: ProtocolParams, crypto: SharedCrypto) -> Self {
        HotStuffNode {
            me,
            params,
            crypto,
            view: 1,
            high_qc: QuorumCert {
                view: 0,
                block_hash: Hash::default(),
            },
            blocks: HashMap::new(),
            votes: HashMap::new(),
            committed: HashSet::new(),
            chain_child: HashMap::new(),
            voted_view: 0,
            proposed_views: HashSet::new(),
            last_delivered_view: 0,
            new_views: HashMap::new(),
            pool: Vec::new(),
            committed_blocks: 0,
        }
    }

    /// The leader of `view`.
    pub fn leader_of(&self, view: u64) -> NodeId {
        NodeId((view % self.params.n() as u64) as u32)
    }

    /// Total blocks committed by this replica.
    pub fn committed_blocks(&self) -> u64 {
        self.committed_blocks
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn timer_id(&self) -> TimerId {
        TimerId::compose(2, self.view)
    }

    fn quorum(&self) -> usize {
        self.params.quorum()
    }

    fn propose_at(&mut self, view: u64, out: &mut Outbox<HotStuffMsg>) {
        if !self.proposed_views.insert(view) {
            return;
        }
        self.view = self.view.max(view);
        let txs = batch_from_pool(
            &mut self.pool,
            self.params.batch_size,
            self.params.tx_size,
            self.params.fill_blocks,
            self.me.0 as u64,
            view,
        );
        let payload_hash = merkle_root(&txs);
        let payload_bytes: u64 = txs.iter().map(|t| t.payload.len() as u64).sum();
        let header = BlockHeader::new(
            Round(view),
            WorkerId(0),
            self.me,
            self.high_qc.block_hash,
            payload_hash,
            txs.len() as u32,
            payload_bytes,
        );
        let signature = self.crypto.sign(self.me, &header.canonical_bytes());
        out.cpu(CpuCharge::sign(payload_bytes));
        out.observe(Observation::BlockProposed {
            worker: WorkerId(0),
            round: Round(view),
            tx_count: txs.len() as u32,
            payload_bytes,
        });
        let signed = SignedHeader::new(header, signature);
        let proposal = HotStuffMsg::Proposal {
            view,
            header: signed.clone(),
            txs: txs.clone(),
            justify: self.high_qc.clone(),
        };
        out.broadcast(proposal);
        // Process our own proposal like any replica would.
        self.handle_proposal(self.me, view, signed, txs, self.high_qc.clone(), out);
    }

    fn handle_proposal(
        &mut self,
        from: NodeId,
        view: u64,
        header: SignedHeader,
        txs: Vec<Transaction>,
        justify: QuorumCert,
        out: &mut Outbox<HotStuffMsg>,
    ) {
        if from != self.leader_of(view) || self.blocks.contains_key(&view) {
            return;
        }
        // Verify the leader's signature and the payload commitment; the vote
        // signature is charged further down, only when a vote is produced.
        if !self.crypto.verify(
            header.proposer(),
            &header.header.canonical_bytes(),
            &header.signature,
        ) {
            return;
        }
        out.cpu(CpuCharge::verify(header.header.payload_bytes));
        if justify.view > self.high_qc.view {
            self.high_qc = justify.clone();
        }
        self.blocks.insert(
            view,
            PendingBlock {
                header: header.clone(),
                txs,
                parent_view: justify.view,
            },
        );
        if view <= self.voted_view {
            // A proposal that arrived *after* a newer one (two leaders'
            // broadcasts travel on different links, so a replica can observe
            // them out of causal order). Too late to vote — the vote-once
            // rule stands — but the block itself still belongs to the chain:
            // store it, and if its view was already committed via a
            // descendant, resume the interrupted commit walk so the chain
            // delivers without a hole.
            if self.committed.contains(&view) {
                self.mark_committed_chain(view);
                self.deliver_chain(out);
            }
            return;
        }
        // Catch up to the proposal's view and record the vote-once rule.
        if view > self.view {
            self.view = view;
        }
        self.voted_view = view;
        // Every replica signs every block it votes for in HotStuff.
        out.cpu(CpuCharge::sign(0));
        let block_hash = fireledger_crypto::hash_header(&header.header);
        let next_leader = self.leader_of(view + 1);
        let vote = HotStuffMsg::Vote { view, block_hash };
        if next_leader == self.me {
            self.handle_vote(self.me, view, block_hash, out);
        } else {
            out.send(next_leader, vote);
        }
        // Commit rule: with a chain of consecutive QCs, the block two views
        // behind the newest certified one is committed.
        self.try_commit(out);
        // Pacemaker for the next view.
        out.set_timer(TimerId::compose(2, view + 1), self.pacemaker_timeout());
    }

    fn pacemaker_timeout(&self) -> Duration {
        (self.params.base_timeout * 10).max(Duration::from_millis(100))
    }

    fn handle_vote(
        &mut self,
        from: NodeId,
        view: u64,
        _block_hash: Hash,
        out: &mut Outbox<HotStuffMsg>,
    ) {
        // Only the leader of view+1 collects these votes.
        if self.leader_of(view + 1) != self.me {
            return;
        }
        let votes = self.votes.entry(view).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum() && !self.proposed_views.contains(&(view + 1)) {
            // Votes travel point-to-point while the proposal is broadcast on
            // other links, so a quorum can arrive *before* the block it
            // certifies. Proposing then would extend a stale high_qc and
            // orphan the gap. Defer instead: when the proposal lands,
            // handle_proposal re-invokes us (with our own vote) and this
            // quorum check passes with the block known.
            let Some(block) = self.blocks.get(&view) else {
                return;
            };
            // Verify the aggregate once (signature aggregation).
            out.cpu(CpuCharge::verify(0));
            let qc = QuorumCert {
                view,
                block_hash: fireledger_crypto::hash_header(&block.header.header),
            };
            if qc.view > self.high_qc.view {
                self.high_qc = qc;
            }
            self.propose_at(view + 1, out);
            self.try_commit(out);
        }
    }

    fn try_commit(&mut self, out: &mut Outbox<HotStuffMsg>) {
        // Three-chain commit rule over parent links: the newest QC certifies
        // b''; if b'' → b' → b is a chain of parent links, b (and all of its
        // still-uncommitted ancestors) commit. Requiring parent *links* rather
        // than consecutive view numbers keeps commits flowing when the
        // pacemaker skips a crashed leader's views.
        let v = self.high_qc.view;
        let Some(b2) = self.blocks.get(&v) else {
            return;
        };
        if b2.parent_view == 0 {
            return;
        }
        let Some(b1) = self.blocks.get(&b2.parent_view) else {
            return;
        };
        if b1.parent_view == 0 {
            return;
        }
        let commit_view = b1.parent_view;
        self.mark_committed_chain(commit_view);
        self.deliver_chain(out);
    }

    /// Marks `from_view` and its ancestors final, recording the parent →
    /// child edges [`Self::deliver_chain`] follows. The walk pauses at a
    /// view whose block has not arrived yet (a proposal overtaken on another
    /// link): the view is still marked final, and when the block lands,
    /// `handle_proposal` resumes the walk from it.
    fn mark_committed_chain(&mut self, from_view: u64) {
        let mut cursor = from_view;
        while cursor != 0 {
            let Some(block) = self.blocks.get(&cursor) else {
                self.committed.insert(cursor);
                return;
            };
            let parent = block.parent_view;
            self.chain_child.insert(parent, cursor);
            self.committed.insert(cursor);
            if parent == 0 || self.committed.contains(&parent) {
                return;
            }
            cursor = parent;
        }
    }

    /// Delivers committed blocks strictly in chain order: follow the
    /// committed parent → child edges from the last delivered view, stopping
    /// at the chain's tip or at a block still in flight. Every replica walks
    /// the same edges, so delivered sequences are identical regardless of
    /// the order the underlying messages arrived in.
    fn deliver_chain(&mut self, out: &mut Outbox<HotStuffMsg>) {
        while let Some(&next) = self.chain_child.get(&self.last_delivered_view) {
            let Some(block) = self.blocks.get(&next).cloned() else {
                return;
            };
            self.committed_blocks += 1;
            self.last_delivered_view = next;
            out.observe(Observation::DefiniteDecision {
                worker: WorkerId(0),
                round: Round(next),
                tx_count: block.header.header.tx_count,
                payload_bytes: block.header.header.payload_bytes,
            });
            out.observe(Observation::FloDelivery {
                worker: WorkerId(0),
                round: Round(next),
            });
            out.deliver(Delivery {
                worker: WorkerId(0),
                round: Round(next),
                proposer: block.header.proposer(),
                block: Block::new(block.header.header.clone(), block.txs.clone()),
            });
        }
    }

    fn handle_new_view(
        &mut self,
        from: NodeId,
        view: u64,
        high_qc: QuorumCert,
        out: &mut Outbox<HotStuffMsg>,
    ) {
        if high_qc.view > self.high_qc.view {
            self.high_qc = high_qc;
        }
        // Adopt (and echo) higher views so the cluster converges on one view
        // even when timeouts fire at slightly different times.
        if view > self.view && from != self.me {
            self.view = view;
            out.broadcast(HotStuffMsg::NewView {
                view,
                high_qc: self.high_qc.clone(),
            });
            out.set_timer(TimerId::compose(2, view), self.pacemaker_timeout());
        }
        if self.leader_of(view) != self.me || self.proposed_views.contains(&view) {
            return;
        }
        let votes = self.new_views.entry(view).or_default();
        votes.insert(from);
        if votes.len() >= self.quorum().saturating_sub(1) {
            self.propose_at(view, out);
        }
    }
}

impl Protocol for HotStuffNode {
    type Msg = HotStuffMsg;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, out: &mut Outbox<HotStuffMsg>) {
        if self.leader_of(self.view) == self.me {
            let view = self.view;
            self.propose_at(view, out);
        }
        out.set_timer(self.timer_id(), self.pacemaker_timeout());
    }

    fn on_message(&mut self, from: NodeId, msg: HotStuffMsg, out: &mut Outbox<HotStuffMsg>) {
        match msg {
            HotStuffMsg::Proposal {
                view,
                header,
                txs,
                justify,
            } => self.handle_proposal(from, view, header, txs, justify, out),
            HotStuffMsg::Vote { view, block_hash } => self.handle_vote(from, view, block_hash, out),
            HotStuffMsg::NewView { view, high_qc } => {
                self.handle_new_view(from, view, high_qc, out)
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<HotStuffMsg>) {
        let (kind, view) = timer.decompose();
        if kind != 2 || view <= self.high_qc.view {
            return;
        }
        // Pacemaker: the expected proposal never arrived; move to the next
        // view and announce it (the announcement is echoed by the others, so
        // the new leader collects a quorum even if timeouts were staggered).
        let next_view = self.view.max(view).max(self.high_qc.view + 1) + 1;
        self.view = next_view;
        out.broadcast(HotStuffMsg::NewView {
            view: next_view,
            high_qc: self.high_qc.clone(),
        });
        if self.leader_of(next_view) == self.me {
            let qc = self.high_qc.clone();
            self.handle_new_view(self.me, next_view, qc, out);
        }
        out.set_timer(TimerId::compose(2, next_view), self.pacemaker_timeout());
    }

    fn on_transaction(&mut self, tx: Transaction, _out: &mut Outbox<HotStuffMsg>) {
        self.pool.push(tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::{SimConfig, Simulation};

    fn cluster(n: usize, batch: usize) -> Vec<HotStuffNode> {
        let params = ProtocolParams::new(n)
            .with_batch_size(batch)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20));
        let crypto = SimKeyStore::generate(n, 5).shared();
        (0..n)
            .map(|i| HotStuffNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect()
    }

    #[test]
    fn fault_free_hotstuff_commits_blocks_everywhere() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(500));
        for i in 0..4u32 {
            assert!(
                sim.node(NodeId(i)).committed_blocks() > 10,
                "node {i} committed only {}",
                sim.node(NodeId(i)).committed_blocks()
            );
        }
    }

    #[test]
    fn committed_sequences_agree_across_replicas() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 5));
        sim.run_for(Duration::from_millis(400));
        let seq = |n: u32| {
            sim.deliveries(NodeId(n))
                .iter()
                .map(|d| (d.round, d.block.header.payload_hash))
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        assert!(reference.len() > 5);
        for i in 1..4 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            assert_eq!(other[..common], reference[..common], "replica {i} diverged");
        }
        // Views are delivered in increasing order.
        assert!(reference.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn leaders_rotate_every_view() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 5));
        sim.run_for(Duration::from_millis(300));
        let proposers: Vec<NodeId> = sim
            .deliveries(NodeId(2))
            .iter()
            .map(|d| d.proposer)
            .collect();
        assert!(proposers.len() > 4);
        for pair in proposers.windows(2) {
            assert_ne!(
                pair[0], pair[1],
                "consecutive blocks must have different leaders"
            );
        }
    }

    #[test]
    fn every_replica_signs_every_block() {
        let mut sim = Simulation::new(
            SimConfig::ideal().with_cost(fireledger_crypto::CostModel::m5_xlarge()),
            cluster(4, 5),
        );
        sim.run_for(Duration::from_millis(300));
        let s = sim.summary();
        let committed = sim.node(NodeId(0)).committed_blocks();
        // At least ~n signatures per committed block (votes + proposal).
        assert!(
            s.signatures >= committed * 3,
            "expected ≥ {} signatures, got {}",
            committed * 3,
            s.signatures
        );
    }

    #[test]
    fn pacemaker_skips_a_crashed_leader() {
        use fireledger_sim::adversary::CrashSchedule;
        use fireledger_sim::SimTime;
        // Node 1 (leader of view 1... node 2 leads view 2, etc.) crashes from
        // the start; progress must continue past its views.
        let adv = CrashSchedule::new().crash(NodeId(2), SimTime::ZERO);
        let mut sim = Simulation::with_adversary(SimConfig::ideal(), cluster(4, 5), Box::new(adv));
        sim.run_for(Duration::from_secs(3));
        assert!(
            sim.node(NodeId(0)).committed_blocks() > 3,
            "HotStuff must make progress despite a crashed replica, got {}",
            sim.node(NodeId(0)).committed_blocks()
        );
    }

    #[test]
    fn wire_sizes_scale_with_batch() {
        let small = HotStuffMsg::Vote {
            view: 1,
            block_hash: Hash::default(),
        };
        assert!(small.wire_size() < 200);
        let txs: Vec<Transaction> = (0..10).map(|i| Transaction::zeroed(0, i, 512)).collect();
        let header = BlockHeader::new(
            Round(1),
            WorkerId(0),
            NodeId(0),
            Hash::default(),
            Hash::default(),
            10,
            5120,
        );
        let prop = HotStuffMsg::Proposal {
            view: 1,
            header: SignedHeader::new(header, fireledger_types::Signature::from(vec![0; 64])),
            txs,
            justify: QuorumCert {
                view: 0,
                block_hash: Hash::default(),
            },
        };
        assert!(prop.wire_size() > 5120);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::adversary::CrashSchedule;
    use fireledger_sim::SimTime;
    use fireledger_sim::{SimConfig, Simulation};

    #[test]
    #[ignore]
    fn debug_pacemaker() {
        let params = ProtocolParams::new(4)
            .with_batch_size(5)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20));
        let crypto = SimKeyStore::generate(4, 5).shared();
        let nodes: Vec<HotStuffNode> = (0..4)
            .map(|i| HotStuffNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
            .collect();
        let adv = CrashSchedule::new().crash(NodeId(2), SimTime::ZERO);
        let mut sim = Simulation::with_adversary(SimConfig::ideal(), nodes, Box::new(adv));
        sim.run_for(Duration::from_secs(1));
        for i in [0u32, 1, 3] {
            let n = sim.node(NodeId(i));
            println!(
                "node {i}: view={} high_qc={} committed={} blocks={} events={}",
                n.view(),
                n.high_qc.view,
                n.committed_blocks(),
                n.blocks.len(),
                sim.events_processed()
            );
        }
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let header = SignedHeader::new(
            BlockHeader::new(
                Round(3),
                WorkerId(0),
                NodeId(1),
                fireledger_types::GENESIS_HASH,
                Hash([9u8; 32]),
                2,
                128,
            ),
            fireledger_types::Signature::from(vec![0x33; 64]),
        );
        let qc = QuorumCert {
            view: 5,
            block_hash: Hash([4u8; 32]),
        };
        assert_eq!(QuorumCert::decode(&qc.encode()).unwrap(), qc);
        let variants = vec![
            HotStuffMsg::Proposal {
                view: 6,
                header,
                txs: vec![Transaction::zeroed(1, 0, 32)],
                justify: qc.clone(),
            },
            HotStuffMsg::Vote {
                view: 6,
                block_hash: Hash([8u8; 32]),
            },
            HotStuffMsg::NewView {
                view: 7,
                high_qc: qc,
            },
        ];
        for m in variants {
            assert_eq!(HotStuffMsg::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
        assert!(matches!(
            HotStuffMsg::decode(&[0x55]),
            Err(fireledger_types::CodecError::BadTag {
                what: "HotStuffMsg",
                ..
            })
        ));
    }
}
